#include "datalog/eval.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "base/error.h"
#include "base/hash.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "datalog/index.h"
#include "datalog/magic.h"
#include "joins/leapfrog.h"

namespace rel {
namespace datalog {

namespace {

// --- stratification ----------------------------------------------------------

/// Assigns each predicate a stratum such that positive dependencies stay
/// within or below, and negative dependencies come from strictly below.
/// Classic iterate-to-fixpoint algorithm; throws kType on negative cycles.
std::map<std::string, int> Stratify(const Program& program) {
  std::map<std::string, int> stratum;
  for (const std::string& pred : program.Predicates()) stratum[pred] = 0;
  size_t n = stratum.size();
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > n + 1) {
      throw RelError(ErrorKind::kType,
                     "datalog program is not stratifiable (negation in a "
                     "recursive cycle)");
    }
    for (const Rule& rule : program.rules()) {
      int& head = stratum[rule.head.pred];
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kPositive) {
          if (stratum[lit.atom.pred] > head) {
            head = stratum[lit.atom.pred];
            changed = true;
          }
        } else if (lit.kind == Literal::Kind::kNegative) {
          if (stratum[lit.atom.pred] + 1 > head) {
            head = stratum[lit.atom.pred] + 1;
            changed = true;
          }
        }
      }
    }
  }
  return stratum;
}

// --- scalar evaluation -------------------------------------------------------

std::optional<Value> EvalArith(ArithOp op, const Value& a, const Value& b) {
  auto both_int = a.is_int() && b.is_int();
  if (!a.is_number() || !b.is_number()) return std::nullopt;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Value::Int(a.AsInt() + b.AsInt())
                      : Value::Float(a.AsDouble() + b.AsDouble());
    case ArithOp::kSub:
      return both_int ? Value::Int(a.AsInt() - b.AsInt())
                      : Value::Float(a.AsDouble() - b.AsDouble());
    case ArithOp::kMul:
      return both_int ? Value::Int(a.AsInt() * b.AsInt())
                      : Value::Float(a.AsDouble() * b.AsDouble());
    case ArithOp::kDiv: {
      if (b.AsDouble() == 0) return std::nullopt;
      if (both_int) {
        int64_t x = a.AsInt();
        int64_t y = b.AsInt();
        if (y == -1) {
          // INT64_MIN / -1 overflows (UB); promote that one case to float.
          if (x == INT64_MIN) return Value::Float(-static_cast<double>(x));
          return Value::Int(-x);
        }
        if (x % y == 0) return Value::Int(x / y);
      }
      return Value::Float(a.AsDouble() / b.AsDouble());
    }
    case ArithOp::kMod: {
      if (!both_int || b.AsInt() == 0) return std::nullopt;
      // x % -1 is 0 for all x, but the instruction traps on INT64_MIN (UB).
      if (b.AsInt() == -1) return Value::Int(0);
      return Value::Int(a.AsInt() % b.AsInt());
    }
    case ArithOp::kMin:
      return a.NumericCompare(b) == Value::Ordering::kGreater ? b : a;
    case ArithOp::kMax:
      return a.NumericCompare(b) == Value::Ordering::kLess ? b : a;
  }
  return std::nullopt;
}

bool EvalCompare(CmpOp op, const Value& a, const Value& b) {
  Value::Ordering o = a.NumericCompare(b);
  switch (op) {
    case CmpOp::kEq: return o == Value::Ordering::kEqual;
    case CmpOp::kNeq: return o != Value::Ordering::kEqual &&
                             o != Value::Ordering::kUnordered;
    case CmpOp::kLt: return o == Value::Ordering::kLess;
    case CmpOp::kLe: return o == Value::Ordering::kLess ||
                            o == Value::Ordering::kEqual;
    case CmpOp::kGt: return o == Value::Ordering::kGreater;
    case CmpOp::kGe: return o == Value::Ordering::kGreater ||
                            o == Value::Ordering::kEqual;
  }
  return false;
}

/// A kCompare literal's outcome: the comparison, complemented when the
/// literal is negated. The complement is over the whole outcome, so
/// kUnordered operands (where every plain comparison is false) satisfy
/// every negated comparison — the faithful `not (a < b)` semantics.
bool EvalCompareLit(const Literal& lit, const Value& a, const Value& b) {
  return EvalCompare(lit.cmp_op, a, b) != lit.negated;
}

/// Mutable per-rule binding vector (variables are dense ids).
using Bindings = std::vector<std::optional<Value>>;

int MaxVar(const Rule& rule) {
  int max_var = -1;
  auto scan_atom = [&max_var](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) max_var = std::max(max_var, t.var);
    }
  };
  scan_atom(rule.head);
  for (const Literal& lit : rule.body) {
    scan_atom(lit.atom);
    if (lit.lhs.is_var()) max_var = std::max(max_var, lit.lhs.var);
    if (lit.rhs.is_var()) max_var = std::max(max_var, lit.rhs.var);
    max_var = std::max(max_var, lit.target);
  }
  return max_var;
}

/// The canonical predicate extents. In parallel evaluation the map
/// structure is frozen before any task runs (every head predicate gets its
/// entry up front), so concurrent units may read foreign extents and write
/// their own without synchronization — relation entries never move and each
/// is written by exactly one unit, only at its round barriers.
struct State {
  /// Not owned. Evaluate points this at a local map; EvaluateDelta points it
  /// at the caller's cached extents so maintenance mutates them in place.
  std::map<std::string, Relation>* full = nullptr;

  const Relation& Full(const std::string& pred) const {
    static const Relation* empty = new Relation();
    auto it = full->find(pred);
    return it == full->end() ? *empty : it->second;
  }
};

/// Per-unit delta extents for one semi-naive round. Unit-local: concurrent
/// units never share a DeltaMap.
using DeltaMap = std::map<std::string, Relation>;

const Relation* FindDelta(const DeltaMap& delta, const std::string& pred) {
  auto it = delta.find(pred);
  return it == delta.end() ? nullptr : &it->second;
}

/// Materialized delta rows for the scan-strategy ablation paths.
const std::vector<Tuple>& DeltaRows(const DeltaMap& delta,
                                    const std::string& pred, size_t arity) {
  static const std::vector<Tuple>* empty = new std::vector<Tuple>();
  const Relation* rel = FindDelta(delta, pred);
  return rel == nullptr ? *empty : rel->TuplesOfArity(arity);
}

/// Builds the head tuple and inserts it into `out` (scan-path variant).
void EmitHead(const Rule& rule, const Bindings& bindings, Relation* out,
              EvalStats* stats) {
  Tuple head;
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) {
      if (!bindings[t.var]) {
        throw RelError(ErrorKind::kSafety,
                       "head variable unbound in rule for '" + rule.head.pred +
                           "'");
      }
      head.Append(*bindings[t.var]);
    } else {
      head.Append(t.constant);
    }
  }
  if (stats) ++stats->tuples_derived;
  out->Insert(head);
}

/// Indexed-path emit: gathers the head values into the caller's reusable
/// scratch buffer and inserts the span straight into `out`'s column arena —
/// no per-candidate Tuple allocation. When `dedup_against` is non-null,
/// tuples already in that extent are dropped at the source — the fixpoint
/// diff happens here, with no intermediate relation and no copy-and-sort.
void EmitHeadColumnar(const Rule& rule, const Bindings& bindings,
                      std::vector<Value>& scratch, Relation* out,
                      EvalStats* stats, const Relation* dedup_against) {
  scratch.clear();
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) {
      if (!bindings[t.var]) {
        throw RelError(ErrorKind::kSafety,
                       "head variable unbound in rule for '" + rule.head.pred +
                           "'");
      }
      scratch.push_back(*bindings[t.var]);
    } else {
      scratch.push_back(t.constant);
    }
  }
  if (stats) ++stats->tuples_derived;
  if (dedup_against &&
      dedup_against->Contains(scratch.data(), scratch.size())) {
    return;
  }
  out->Insert(scratch.data(), scratch.size());
}

// --- scan-based evaluation (kNaive / kSemiNaiveScan ablation baseline) -------

/// Evaluates one rule by nested-loop scans; `delta_index`, when >= 0, forces
/// that positive-atom occurrence to range over the delta relation.
void EvalRuleScan(const Rule& rule, const State& state, const DeltaMap& delta,
                  int delta_index, Relation* out, EvalStats* stats) {
  Bindings bindings(static_cast<size_t>(MaxVar(rule) + 1));

  std::function<void(size_t)> step = [&](size_t li) {
    if (li == rule.body.size()) {
      EmitHead(rule, bindings, out, stats);
      return;
    }
    const Literal& lit = rule.body[li];
    auto value_of = [&](const Term& t) -> std::optional<Value> {
      if (!t.is_var()) return t.constant;
      return bindings[t.var];
    };
    switch (lit.kind) {
      case Literal::Kind::kPositive: {
        bool use_delta = static_cast<int>(li) == delta_index;
        const std::vector<Tuple>* rows =
            use_delta
                ? &DeltaRows(delta, lit.atom.pred, lit.atom.terms.size())
                : &state.Full(lit.atom.pred)
                       .TuplesOfArity(lit.atom.terms.size());
        if (stats) {
          bool any_bound = false;
          for (const Term& t : lit.atom.terms) {
            if (!t.is_var() || bindings[t.var]) {
              any_bound = true;
              break;
            }
          }
          if (use_delta) {
            ++stats->delta_scans;
          } else if (any_bound) {
            ++stats->full_scans;
          } else {
            ++stats->driver_scans;
          }
        }
        for (const Tuple& row : *rows) {
          bool ok = true;
          std::vector<int> newly_bound;
          for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
            const Term& t = lit.atom.terms[i];
            if (!t.is_var()) {
              ok = row[i] == t.constant;
            } else if (bindings[t.var]) {
              ok = row[i] == *bindings[t.var];
            } else {
              bindings[t.var] = row[i];
              newly_bound.push_back(t.var);
            }
          }
          if (ok) step(li + 1);
          for (int v : newly_bound) bindings[v].reset();
        }
        return;
      }
      case Literal::Kind::kNegative: {
        Tuple probe;
        for (const Term& t : lit.atom.terms) {
          std::optional<Value> v = value_of(t);
          if (!v) {
            throw RelError(ErrorKind::kSafety,
                           "variable in negated atom of rule for '" +
                               rule.head.pred + "' is unbound");
          }
          probe.Append(*v);
        }
        if (!state.Full(lit.atom.pred).Contains(probe)) step(li + 1);
        return;
      }
      case Literal::Kind::kCompare: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          // An equality with exactly one side known acts as a binding; the
          // unknown side is necessarily a variable (constants always have a
          // value). Handles both `V = c` and `c = V`. Negated equalities
          // never bind — `not (V = c)` constrains, it does not produce.
          if (lit.cmp_op == CmpOp::kEq && !lit.negated && (!a != !b)) {
            const Term& unbound = a ? lit.rhs : lit.lhs;
            const Value& known = a ? *a : *b;
            bindings[unbound.var] = known;
            step(li + 1);
            bindings[unbound.var].reset();
            return;
          }
          throw RelError(ErrorKind::kSafety,
                         "comparison over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        if (EvalCompareLit(lit, *a, *b)) step(li + 1);
        return;
      }
      case Literal::Kind::kAssign: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          throw RelError(ErrorKind::kSafety,
                         "assignment over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        std::optional<Value> r = EvalArith(lit.arith_op, *a, *b);
        if (!r) return;
        if (bindings[lit.target]) {
          if (*bindings[lit.target] == *r) step(li + 1);
          return;
        }
        bindings[lit.target] = *r;
        step(li + 1);
        bindings[lit.target].reset();
        return;
      }
    }
  };
  step(0);
}

// --- join planning (kSemiNaive) ----------------------------------------------

/// One step of a compiled rule plan.
struct PlanStep {
  enum class Kind {
    kScanDelta,  // scan the semi-naive delta occurrence (always first)
    kScanFull,   // scan an all-free leading atom
    kProbe,      // probe the (pred, arity, key_positions) hash index
    kNegation,   // all-bound negated atom: Contains check
    kFilter,     // all-bound comparison
    kBind,       // equality with one unbound variable side: binds it
    kAssign,     // arithmetic assignment; operands bound
  };
  Kind kind;
  size_t lit_index = 0;
  std::vector<size_t> key_positions;  // kProbe: columns bound at entry
  bool bind_lhs = false;              // kBind: the lhs is the unbound side
};

/// A compiled per-(rule, delta-occurrence) evaluation plan.
struct RulePlan {
  std::vector<PlanStep> steps;
  int num_vars = 0;
  bool leapfrog = false;  // route the whole body through LeapfrogJoin
};

/// True if the rule body is a pure conjunction of >= 2 all-variable positive
/// atoms with no repeated variables inside an atom and every rule variable
/// covered — the shape LeapfrogJoin handles once columns are permuted into
/// the global variable order.
bool LeapfrogEligible(const Rule& rule, int num_vars) {
  if (rule.body.size() < 2 || num_vars == 0) return false;
  std::vector<bool> covered(num_vars, false);
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kPositive) return false;
    if (lit.atom.terms.empty()) return false;
    std::vector<bool> in_atom(num_vars, false);
    for (const Term& t : lit.atom.terms) {
      if (!t.is_var()) return false;
      if (in_atom[t.var]) return false;
      in_atom[t.var] = true;
      covered[t.var] = true;
    }
  }
  for (int v = 0; v < num_vars; ++v) {
    if (!covered[v]) return false;
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && !covered[t.var]) return false;
  }
  return true;
}

/// Compiles the join plan for one (rule, delta-occurrence) pair: delta atom
/// first, filters/bindings/assignments/negations hoisted as early as their
/// variables allow, remaining positive atoms ordered greedily by bound-column
/// count with estimated cardinality as tie-break. A nonzero `order_seed`
/// replaces the greedy order with a seeded pseudo-random permutation of the
/// positive atoms (and skips the leapfrog routing) — the fuzzer's
/// plan-order lattice; every permutation is answer-equivalent because
/// safety is re-checked below and match_row verifies already-bound
/// variables regardless of which atom bound them first. Throws kSafety
/// when the rule is not range-restricted.
RulePlan BuildPlan(const Rule& rule, int delta_index, const State& state,
                   uint64_t order_seed,
                   const std::vector<bool>* prebound = nullptr) {
  RulePlan plan;
  plan.num_vars = MaxVar(rule) + 1;
  if (order_seed == 0 && delta_index < 0 && prebound == nullptr &&
      LeapfrogEligible(rule, plan.num_vars)) {
    plan.leapfrog = true;
    return plan;
  }

  size_t n = rule.body.size();
  std::vector<bool> done(n, false);
  // `prebound` marks variables the caller will bind before execution (the
  // DRed re-derivation point probes pre-bind every head variable), so the
  // planner can key probes on them from the first atom.
  std::vector<bool> bound(plan.num_vars, false);
  if (prebound != nullptr) bound = *prebound;
  auto term_known = [&](const Term& t) { return !t.is_var() || bound[t.var]; };
  auto bind_atom_vars = [&](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) bound[t.var] = true;
    }
  };
  // True if some positive atom or assignment will bind `var` once planned.
  // Equalities on such variables must stay filters (EvalCompare equates
  // Int 1 with Float 1.0) rather than become bindings checked with
  // type-exact index hashes or tuple equality.
  auto bound_elsewhere = [&](int var) {
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kAssign && lit.target == var) {
        return true;
      }
      if (lit.kind != Literal::Kind::kPositive) continue;
      for (const Term& t : lit.atom.terms) {
        if (t.is_var() && t.var == var) return true;
      }
    }
    return false;
  };

  // Hoists every non-positive literal whose variables are available; repeats
  // because a hoisted assignment/binding can unlock further literals.
  auto hoist = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < n; ++i) {
        if (done[i]) continue;
        const Literal& lit = rule.body[i];
        switch (lit.kind) {
          case Literal::Kind::kPositive:
            break;
          case Literal::Kind::kNegative: {
            bool all = true;
            for (const Term& t : lit.atom.terms) all &= term_known(t);
            if (all) {
              plan.steps.push_back({PlanStep::Kind::kNegation, i, {}, false});
              done[i] = true;
              progress = true;
            }
            break;
          }
          case Literal::Kind::kCompare: {
            bool lk = term_known(lit.lhs);
            bool rk = term_known(lit.rhs);
            if (lk && rk) {
              plan.steps.push_back({PlanStep::Kind::kFilter, i, {}, false});
              done[i] = true;
              progress = true;
            } else if (lit.cmp_op == CmpOp::kEq && !lit.negated && lk != rk &&
                       !bound_elsewhere((lk ? lit.rhs : lit.lhs).var)) {
              // Equality with exactly one side known binds the other side
              // (which is necessarily a variable) — but only for pure
              // output variables no atom will bind, preserving the
              // numeric-tolerant filter semantics for join variables.
              PlanStep s{PlanStep::Kind::kBind, i, {}, !lk};
              bound[(s.bind_lhs ? lit.lhs : lit.rhs).var] = true;
              plan.steps.push_back(std::move(s));
              done[i] = true;
              progress = true;
            }
            break;
          }
          case Literal::Kind::kAssign: {
            if (term_known(lit.lhs) && term_known(lit.rhs)) {
              plan.steps.push_back({PlanStep::Kind::kAssign, i, {}, false});
              bound[lit.target] = true;
              done[i] = true;
              progress = true;
            }
            break;
          }
        }
      }
    }
  };

  if (delta_index >= 0) {
    plan.steps.push_back(
        {PlanStep::Kind::kScanDelta, static_cast<size_t>(delta_index), {},
         false});
    bind_atom_vars(rule.body[delta_index].atom);
    done[delta_index] = true;
  }
  hoist();

  Rng order_rng(order_seed);
  for (;;) {
    int best = -1;
    if (order_seed != 0) {
      // Seeded permutation: pick uniformly among the not-yet-planned
      // positive atoms. Deterministic in (seed, rule, delta occurrence).
      size_t candidates = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!done[i] && rule.body[i].kind == Literal::Kind::kPositive) {
          ++candidates;
        }
      }
      if (candidates > 0) {
        size_t pick = order_rng.NextBelow(candidates);
        for (size_t i = 0; i < n; ++i) {
          if (done[i] || rule.body[i].kind != Literal::Kind::kPositive) {
            continue;
          }
          if (pick-- == 0) {
            best = static_cast<int>(i);
            break;
          }
        }
      }
    } else {
      size_t best_bound = 0;
      size_t best_rows = 0;
      for (size_t i = 0; i < n; ++i) {
        if (done[i] || rule.body[i].kind != Literal::Kind::kPositive) continue;
        const Atom& atom = rule.body[i].atom;
        size_t nb = 0;
        for (const Term& t : atom.terms) nb += term_known(t);
        size_t rows = state.Full(atom.pred).CountOfArity(atom.terms.size());
        if (best < 0 || nb > best_bound ||
            (nb == best_bound && rows < best_rows)) {
          best = static_cast<int>(i);
          best_bound = nb;
          best_rows = rows;
        }
      }
    }
    if (best < 0) break;
    const Atom& atom = rule.body[best].atom;
    PlanStep s{PlanStep::Kind::kProbe, static_cast<size_t>(best), {}, false};
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      if (term_known(atom.terms[p])) s.key_positions.push_back(p);
    }
    if (s.key_positions.empty()) s.kind = PlanStep::Kind::kScanFull;
    plan.steps.push_back(std::move(s));
    bind_atom_vars(atom);
    done[best] = true;
    hoist();
  }

  for (size_t i = 0; i < n; ++i) {
    if (!done[i]) {
      const char* what =
          rule.body[i].kind == Literal::Kind::kNegative
              ? "variable in negated atom of rule for '"
              : rule.body[i].kind == Literal::Kind::kCompare
                    ? "comparison over unbound variables in rule for '"
                    : "assignment over unbound variables in rule for '";
      throw RelError(ErrorKind::kSafety, what + rule.head.pred + "'");
    }
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && !bound[t.var]) {
      throw RelError(ErrorKind::kSafety,
                     "head variable unbound in rule for '" + rule.head.pred +
                         "'");
    }
  }
  return plan;
}

// --- plan execution ----------------------------------------------------------

/// Runs an all-positive all-variable rule through Leapfrog Triejoin.
/// Column-permuted sorted copies (the triejoin precondition) come from the
/// IndexCache — built once per (predicate, column order) per version instead
/// of rematerialized on every call.
void ExecLeapfrog(const Rule& rule, const RulePlan& plan, const State& state,
                  IndexCache* cache, Relation* out, EvalStats* stats,
                  const Relation* dedup_against) {
  std::vector<joins::AtomSpec> atoms;
  atoms.reserve(rule.body.size());
  for (const Literal& lit : rule.body) {
    // (var, column) pairs sorted by var give the triejoin column order.
    std::vector<std::pair<int, size_t>> order;
    order.reserve(lit.atom.terms.size());
    for (size_t p = 0; p < lit.atom.terms.size(); ++p) {
      order.emplace_back(lit.atom.terms[p].var, p);
    }
    std::sort(order.begin(), order.end());
    joins::AtomSpec spec;
    std::vector<size_t> col_order;
    col_order.reserve(order.size());
    for (const auto& [var, col] : order) {
      spec.vars.push_back(var);
      col_order.push_back(col);
    }
    spec.rel = &cache->GetSorted(lit.atom.pred, state.Full(lit.atom.pred),
                                 lit.atom.terms.size(), col_order,
                                 stats ? &stats->sorted_builds : nullptr);
    atoms.push_back(std::move(spec));
  }
  if (stats) ++stats->leapfrog_joins;
  std::vector<Value> scratch;
  scratch.reserve(rule.head.terms.size());
  joins::LeapfrogJoin(
      plan.num_vars, atoms, [&](const std::vector<Value>& binding) {
        scratch.clear();
        for (const Term& t : rule.head.terms) {
          scratch.push_back(t.is_var() ? binding[t.var] : t.constant);
        }
        if (stats) ++stats->tuples_derived;
        if (dedup_against &&
            dedup_against->Contains(scratch.data(), scratch.size())) {
          return;
        }
        out->Insert(scratch.data(), scratch.size());
      });
}

/// Executes a compiled plan: scans drive, probes follow, filters prune.
/// `out` receives only tuples not already in `dedup_against`.
///
/// `delta_rel` is the delta extent the kScanDelta step ranges over (null
/// when the plan has none). [drv_begin, drv_end) restricts the *first* plan
/// step's scan to that row range — the parallel evaluator's chunked-driver
/// partitioning; callers only pass a proper sub-range when step 0 is a
/// kScanDelta/kScanFull. Everything this function touches is read-only
/// except `out` and `stats`, both task-local under parallel evaluation.
void ExecPlan(const Rule& rule, const RulePlan& plan, const State& state,
              const Relation* delta_rel, IndexCache* cache, Relation* out,
              EvalStats* stats, const Relation* dedup_against,
              size_t drv_begin, size_t drv_end,
              const Bindings* initial = nullptr) {
  if (plan.leapfrog) {
    ExecLeapfrog(rule, plan, state, cache, out, stats, dedup_against);
    return;
  }
  Bindings bindings = initial != nullptr
                          ? *initial
                          : Bindings(static_cast<size_t>(plan.num_vars));
  // Reusable head-emission buffer: values stream from here straight into the
  // output relation's column arena, so no Tuple is allocated per derivation.
  std::vector<Value> head_buf;
  head_buf.reserve(rule.head.terms.size());
  // Reusable probe-key scratch, one buffer per plan step: a step never
  // re-enters itself while its own probe is live (recursion only descends),
  // so per-step reuse is safe and avoids an allocation per probe.
  std::vector<std::vector<Value>> key_bufs(plan.steps.size());
  // Index handles resolved at most once per step per rule evaluation:
  // extents are frozen while a plan runs (derivations go to a separate
  // relation), so the cache lookup — string/vector key construction plus a
  // map walk — must not sit on the per-probe path.
  std::vector<const HashIndex*> step_index(plan.steps.size(), nullptr);
  auto value_of = [&](const Term& t) -> const Value& {
    // Plan construction guarantees the term is known here.
    return t.is_var() ? *bindings[t.var] : t.constant;
  };

  auto step = [&](auto&& self, size_t si) -> void {
    if (si == plan.steps.size()) {
      EmitHeadColumnar(rule, bindings, head_buf, out, stats, dedup_against);
      return;
    }
    const PlanStep& ps = plan.steps[si];
    const Literal& lit = rule.body[ps.lit_index];

    // Matches `row` against the atom (binding fresh variables, checking
    // constants and repeated occurrences) and recurses on success.
    auto match_row = [&](const TupleRef& row) {
      bool ok = true;
      int newly_bound[8];
      size_t num_newly = 0;
      std::vector<int> overflow;
      for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
        const Term& t = lit.atom.terms[i];
        if (!t.is_var()) {
          ok = row[i] == t.constant;
        } else if (bindings[t.var]) {
          ok = row[i] == *bindings[t.var];
        } else {
          bindings[t.var] = row[i];
          if (num_newly < 8) {
            newly_bound[num_newly++] = t.var;
          } else {
            overflow.push_back(t.var);
          }
        }
      }
      if (ok) self(self, si + 1);
      for (size_t i = 0; i < num_newly; ++i) bindings[newly_bound[i]].reset();
      for (int v : overflow) bindings[v].reset();
    };

    switch (ps.kind) {
      case PlanStep::Kind::kScanDelta: {
        if (stats) ++stats->delta_scans;
        if (delta_rel != nullptr) {
          // Insertion order; skips the per-round sort TuplesOfArity forces.
          // kScanDelta is always step 0, so the driver range applies.
          delta_rel->ForEachOfArityRange(lit.atom.terms.size(), drv_begin,
                                         drv_end, match_row);
        }
        return;
      }
      case PlanStep::Kind::kScanFull: {
        if (stats) ++stats->driver_scans;
        const size_t begin = si == 0 ? drv_begin : 0;
        const size_t end = si == 0 ? drv_end : static_cast<size_t>(-1);
        state.Full(lit.atom.pred)
            .ForEachOfArityRange(lit.atom.terms.size(), begin, end,
                                 match_row);
        return;
      }
      case PlanStep::Kind::kProbe: {
        if (!step_index[si]) {
          step_index[si] = &cache->Get(
              lit.atom.pred, state.Full(lit.atom.pred), lit.atom.terms.size(),
              ps.key_positions, stats ? &stats->index_builds : nullptr,
              stats ? &stats->index_appends : nullptr);
        }
        const HashIndex& index = *step_index[si];
        std::vector<Value>& key = key_bufs[si];
        key.clear();
        for (size_t p : ps.key_positions) {
          key.push_back(value_of(lit.atom.terms[p]));
        }
        if (stats) ++stats->index_probes;
        index.Probe(key, match_row);
        return;
      }
      case PlanStep::Kind::kNegation: {
        std::vector<Value>& probe = key_bufs[si];
        probe.clear();
        for (const Term& t : lit.atom.terms) probe.push_back(value_of(t));
        if (!state.Full(lit.atom.pred).Contains(probe.data(), probe.size())) {
          self(self, si + 1);
        }
        return;
      }
      case PlanStep::Kind::kFilter: {
        if (EvalCompareLit(lit, value_of(lit.lhs), value_of(lit.rhs))) {
          self(self, si + 1);
        }
        return;
      }
      case PlanStep::Kind::kBind: {
        const Term& target = ps.bind_lhs ? lit.lhs : lit.rhs;
        const Term& source = ps.bind_lhs ? lit.rhs : lit.lhs;
        bindings[target.var] = value_of(source);
        self(self, si + 1);
        bindings[target.var].reset();
        return;
      }
      case PlanStep::Kind::kAssign: {
        std::optional<Value> r =
            EvalArith(lit.arith_op, value_of(lit.lhs), value_of(lit.rhs));
        if (!r) return;
        if (bindings[lit.target]) {
          if (*bindings[lit.target] == *r) self(self, si + 1);
          return;
        }
        bindings[lit.target] = *r;
        self(self, si + 1);
        bindings[lit.target].reset();
        return;
      }
    }
  };
  step(step, 0);
}

// --- units: the recursion components scheduled on the dependency DAG --------

/// One node of the evaluation DAG: a strongly-connected component of the
/// head-predicate dependency graph (a maximal set of mutually recursive
/// predicates) with all its rules. Each unit runs its own semi-naive
/// fixpoint loop; units joined by no dependency path are independent and
/// may evaluate concurrently. This refines the numeric strata: a stratum
/// whose predicates merely sit at the same negation depth splits into the
/// components that actually recurse together.
struct Unit {
  std::vector<const Rule*> rules;
  std::set<std::string> heads;
  std::vector<int> succs;  // units that depend on this unit
  int num_deps = 0;        // distinct predecessor units
};

/// Groups head predicates into units (Tarjan SCC, iterative) and wires the
/// dependency edges. Deterministic: DFS roots and adjacency follow program
/// order, and units are numbered by the first rule whose head belongs to
/// them. The condensation of a digraph is acyclic, so the result is a DAG;
/// Stratify() has already rejected components containing a negation.
std::vector<Unit> BuildUnits(const Program& program) {
  // Head predicates in first-appearance order, and their dependency
  // adjacency (body references to other head predicates, positive or
  // negative; EDB-only predicates are constants, not graph nodes).
  std::vector<std::string> preds;
  std::map<std::string, int> id_of;
  for (const Rule& rule : program.rules()) {
    if (id_of.emplace(rule.head.pred, preds.size()).second) {
      preds.push_back(rule.head.pred);
    }
  }
  const int n = static_cast<int>(preds.size());
  std::vector<std::vector<int>> adj(n);
  for (const Rule& rule : program.rules()) {
    int h = id_of.at(rule.head.pred);
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kPositive &&
          lit.kind != Literal::Kind::kNegative) {
        continue;
      }
      auto it = id_of.find(lit.atom.pred);
      if (it != id_of.end()) adj[h].push_back(it->second);
    }
  }

  // Iterative Tarjan.
  std::vector<int> index(n, -1), lowlink(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int num_comps = 0;
  struct Frame {
    int v;
    size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        int w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
        continue;
      }
      if (lowlink[f.v] == index[f.v]) {
        for (;;) {
          int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = num_comps;
          if (w == f.v) break;
        }
        ++num_comps;
      }
      int v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }

  // Units in order of first rule appearance.
  std::vector<Unit> units;
  std::map<int, int> unit_of_comp;
  for (const Rule& rule : program.rules()) {
    int c = comp[id_of.at(rule.head.pred)];
    auto [it, inserted] = unit_of_comp.emplace(c, units.size());
    if (inserted) units.emplace_back();
    Unit& unit = units[it->second];
    unit.rules.push_back(&rule);
    unit.heads.insert(rule.head.pred);
  }

  // Cross-unit dependency edges.
  std::vector<std::set<int>> deps_of(units.size());
  for (int v = 0; v < n; ++v) {
    int u = unit_of_comp.at(comp[v]);
    for (int w : adj[v]) {
      int uw = unit_of_comp.at(comp[w]);
      if (uw != u) deps_of[u].insert(uw);
    }
  }
  for (size_t u = 0; u < units.size(); ++u) {
    units[u].num_deps = static_cast<int>(deps_of[u].size());
    for (int v : deps_of[u]) units[v].succs.push_back(static_cast<int>(u));
  }
  return units;
}

/// Kahn topological order, smallest unit index first — the deterministic
/// sequential schedule (and the tie-break the parallel scheduler's launches
/// approximate).
std::vector<int> TopoOrder(const std::vector<Unit>& units) {
  std::vector<int> remaining(units.size());
  std::set<int> ready;
  for (size_t u = 0; u < units.size(); ++u) {
    remaining[u] = units[u].num_deps;
    if (remaining[u] == 0) ready.insert(static_cast<int>(u));
  }
  std::vector<int> order;
  order.reserve(units.size());
  while (!ready.empty()) {
    int u = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(u);
    for (int v : units[u].succs) {
      if (--remaining[v] == 0) ready.insert(v);
    }
  }
  InternalCheck(order.size() == units.size(), "unit graph is not a DAG");
  return order;
}

/// Adds `from`'s counters into `into` (the per-unit/per-slot stats merge;
/// top-level fields strata/units/threads are set once by Evaluate).
void AccumulateCounters(EvalStats* into, const EvalStats& from) {
  into->iterations += from.iterations;
  into->tuples_derived += from.tuples_derived;
  into->index_builds += from.index_builds;
  into->index_appends += from.index_appends;
  into->sorted_builds += from.sorted_builds;
  into->index_probes += from.index_probes;
  into->full_scans += from.full_scans;
  into->driver_scans += from.driver_scans;
  into->delta_scans += from.delta_scans;
  into->leapfrog_joins += from.leapfrog_joins;
  into->par_tasks += from.par_tasks;
  into->par_steals += from.par_steals;
  into->par_merges += from.par_merges;
  into->delta_inserts += from.delta_inserts;
  into->delta_deletes += from.delta_deletes;
  into->rederived += from.rederived;
}

/// Driver scans shorter than this run as one task; longer ones split into
/// row-range chunks of at least this many rows. Chosen so a chunk amortizes
/// task dispatch (~µs) against a few thousand probe/emit operations.
constexpr size_t kMinChunkRows = 64;

/// Runs one unit's fixpoint loop to completion. Sequential when `pool` is
/// null; otherwise each (rule, delta-occurrence) plan becomes a task per
/// round (large drivers split into row-range chunks), tasks emit into
/// per-thread staging relations deduplicated against the frozen extents,
/// and the staging buffers merge into the canonical state at the round
/// barrier — the single-writer discipline that keeps every concurrent read
/// lock-free. Counter totals land in `out_stats` under `stats_mu`.
/// `plan_seed` is EvalOptions::plan_order_seed; `rules_base` is the start
/// of the program's rule vector, giving every rule a stable index so the
/// per-(rule, delta) permutation sub-seed is identical across runs (rule
/// POINTERS vary run to run and must never feed the seed).
/// `seed`, when non-null, switches the unit into *maintenance* mode: the
/// initial full round is skipped and the fixpoint resumes with `*seed` as
/// the first delta (tuples already merged into the full extents by the
/// caller — the delta ⊆ full invariant semi-naive relies on). The first
/// round runs one delta-variant per positive occurrence of ANY seeded
/// predicate (EDB or lower-unit preds included, not just this unit's
/// heads); later rounds revert to the standard heads-only filter. `collect`,
/// when non-null, accumulates every tuple the unit newly added to the full
/// extents — the downstream delta for units that depend on this one.
void EvalUnit(const Unit& unit, bool indexed, bool semi_naive,
              int max_iterations, uint64_t plan_seed, const Rule* rules_base,
              State* state, IndexCache* cache, ThreadPool* pool,
              EvalStats* out_stats, std::mutex* stats_mu,
              const DeltaMap* seed = nullptr, DeltaMap* collect = nullptr) {
  EvalStats local;
  // Fires when max_iterations > 0 and this unit's fixpoint exceeds it — the
  // guard against value-generating recursion that never converges.
  auto check_cap = [&] {
    if (max_iterations <= 0 || local.iterations <= max_iterations) return;
    std::string heads;
    for (const std::string& pred : unit.heads) {
      if (!heads.empty()) heads += ", ";
      heads += pred;
    }
    throw RelError(ErrorKind::kNonConvergent,
                   "datalog fixpoint for unit {" + heads +
                       "} did not converge within max_iterations = " +
                       std::to_string(max_iterations) +
                       " rounds; the partial extent is discarded");
  };
  std::map<std::pair<const Rule*, int>, RulePlan> plans;
  // Plans are built at first use (cardinality estimates read the state at
  // that moment) and reused for the rest of the unit — the same timing in
  // sequential and parallel mode, so both produce identical plans.
  auto plan_for = [&](const Rule* rule, int delta_index) -> const RulePlan& {
    auto key = std::make_pair(rule, delta_index);
    auto it = plans.find(key);
    if (it == plans.end()) {
      uint64_t sub_seed = plan_seed;
      if (sub_seed != 0) {
        // SplitMix-style mix of (seed, rule index, delta occurrence) so
        // every plan draws an independent, reproducible permutation.
        sub_seed ^= static_cast<uint64_t>(rule - rules_base) *
                    0x9E3779B97F4A7C15ULL;
        sub_seed ^= static_cast<uint64_t>(delta_index + 2) *
                    0xBF58476D1CE4E5B9ULL;
        if (sub_seed == 0) sub_seed = 1;
      }
      it = plans.emplace(key, BuildPlan(*rule, delta_index, *state, sub_seed))
               .first;
    }
    return it->second;
  };

  DeltaMap delta;
  using Pair = std::pair<const Rule*, int>;

  // Evaluates the round's (rule, delta-occurrence) pairs into `added`.
  auto run_round = [&](const std::vector<Pair>& pairs, DeltaMap* added) {
    if (!indexed) {
      for (const auto& [rule, di] : pairs) {
        const Relation& full = state->full->at(rule->head.pred);
        Relation derived;
        EvalRuleScan(*rule, *state, delta, di, &derived, &local);
        derived.ForEach([&](const TupleRef& t) {
          if (!full.Contains(t)) (*added)[rule->head.pred].Insert(t);
        });
      }
      return;
    }

    // Task list: one entry per (rule, delta) pair, or several when the
    // driver scan is large enough to chunk.
    struct Task {
      const Rule* rule;
      const RulePlan* plan;
      const Relation* delta_rel;
      size_t begin, end;
    };
    std::vector<Task> tasks;
    for (const auto& [rule, di] : pairs) {
      const RulePlan& plan = plan_for(rule, di);
      const Relation* delta_rel =
          di >= 0 ? FindDelta(delta, rule->body[di].atom.pred) : nullptr;
      size_t rows = static_cast<size_t>(-1);  // "not chunkable"
      if (pool != nullptr && !plan.leapfrog && !plan.steps.empty()) {
        const PlanStep& s0 = plan.steps[0];
        const Literal& lit = rule->body[s0.lit_index];
        if (s0.kind == PlanStep::Kind::kScanDelta) {
          rows = delta_rel == nullptr
                     ? 0
                     : delta_rel->CountOfArity(lit.atom.terms.size());
        } else if (s0.kind == PlanStep::Kind::kScanFull) {
          rows = state->Full(lit.atom.pred)
                     .CountOfArity(lit.atom.terms.size());
        }
      }
      if (pool == nullptr || rows == static_cast<size_t>(-1) ||
          rows < 2 * kMinChunkRows) {
        tasks.push_back({rule, &plan, delta_rel, 0, static_cast<size_t>(-1)});
        continue;
      }
      size_t chunks =
          std::min(static_cast<size_t>(pool->num_slots()) * 2,
                   (rows + kMinChunkRows - 1) / kMinChunkRows);
      size_t per = (rows + chunks - 1) / chunks;
      for (size_t b = 0; b < rows; b += per) {
        tasks.push_back({rule, &plan, delta_rel, b, std::min(b + per, rows)});
      }
    }

    if (pool == nullptr) {
      for (const Task& t : tasks) {
        ExecPlan(*t.rule, *t.plan, *state, t.delta_rel, cache,
                 &(*added)[t.rule->head.pred], &local,
                 &state->full->at(t.rule->head.pred), t.begin, t.end);
      }
      return;
    }

    // Per-thread staging: each slot is written by at most one thread at a
    // time (a thread runs one task at a time and every task addresses its
    // own slot), so no emit ever takes a lock.
    struct SlotStage {
      std::map<std::string, Relation> rels;
      EvalStats stats;
    };
    std::vector<SlotStage> staging(pool->num_slots());
    auto exec_task = [&](const Task& t) {
      SlotStage& stage = staging[pool->CurrentSlot()];
      ExecPlan(*t.rule, *t.plan, *state, t.delta_rel, cache,
               &stage.rels[t.rule->head.pred], &stage.stats,
               &state->full->at(t.rule->head.pred), t.begin, t.end);
    };
    if (tasks.size() == 1) {
      // A single task gains nothing from dispatch; run it right here.
      exec_task(tasks[0]);
    } else {
      local.par_tasks += tasks.size();
      ThreadPool::TaskGroup group(pool);
      for (const Task& t : tasks) {
        group.Run([&exec_task, t] { exec_task(t); });
      }
      group.Wait();
    }
    // Round barrier: merge the staging buffers (slot order, deterministic).
    // Emit-site dedup already dropped tuples present in the full extents;
    // InsertAll collapses duplicates derived by different tasks.
    for (SlotStage& stage : staging) {
      for (auto& [pred, rel] : stage.rels) {
        if (rel.empty()) continue;
        (*added)[pred].InsertAll(rel);
        ++local.par_merges;
      }
      AccumulateCounters(&local, stage.stats);
    }
  };

  bool seeded_round = seed != nullptr;
  if (seed == nullptr) {
    // Initial round: evaluate every rule of the unit fully.
    std::vector<Pair> init_pairs;
    init_pairs.reserve(unit.rules.size());
    for (const Rule* rule : unit.rules) init_pairs.emplace_back(rule, -1);
    DeltaMap added;
    run_round(init_pairs, &added);
    for (auto& [pred, rel] : added) {
      state->full->at(pred).InsertAll(rel);
      if (collect) (*collect)[pred].InsertAll(rel);
    }
    delta = std::move(added);
    ++local.iterations;
    check_cap();
  } else {
    delta = *seed;
  }

  // Iterate to fixpoint within the unit.
  for (;;) {
    bool any_delta = false;
    for (const auto& [pred, rel] : delta) {
      (void)pred;
      if (!rel.empty()) any_delta = true;
    }
    if (!any_delta) break;
    ++local.iterations;
    check_cap();
    std::vector<Pair> pairs;
    for (const Rule* rule : unit.rules) {
      if (semi_naive) {
        // One pass per recursive-atom occurrence, with that occurrence
        // restricted to the delta. The first maintenance round widens the
        // filter to every seeded predicate (the seed can live on EDB or
        // lower-unit preds no regular round would treat as a delta).
        for (size_t li = 0; li < rule->body.size(); ++li) {
          const Literal& lit = rule->body[li];
          if (lit.kind != Literal::Kind::kPositive) continue;
          if (seeded_round) {
            const Relation* d = FindDelta(delta, lit.atom.pred);
            if (d == nullptr || d->empty()) continue;
          } else if (unit.heads.count(lit.atom.pred) == 0) {
            continue;
          }
          pairs.emplace_back(rule, static_cast<int>(li));
        }
      } else {
        pairs.emplace_back(rule, -1);
      }
    }
    seeded_round = false;
    DeltaMap next_added;
    run_round(pairs, &next_added);
    for (auto& [pred, rel] : next_added) {
      state->full->at(pred).InsertAll(rel);
      if (collect) (*collect)[pred].InsertAll(rel);
    }
    delta = std::move(next_added);
  }

  std::lock_guard<std::mutex> lock(*stats_mu);
  AccumulateCounters(out_stats, local);
}

}  // namespace

std::string EvalStats::ToString() const {
  std::ostringstream os;
  os << "strata=" << strata << " units=" << units << " threads=" << threads
     << " iterations=" << iterations << " tuples_derived=" << tuples_derived
     << " index_builds=" << index_builds << " index_appends=" << index_appends
     << " sorted_builds=" << sorted_builds
     << " index_probes=" << index_probes << " full_scans=" << full_scans
     << " driver_scans=" << driver_scans << " delta_scans=" << delta_scans
     << " leapfrog_joins=" << leapfrog_joins << " par_tasks=" << par_tasks
     << " par_steals=" << par_steals << " par_merges=" << par_merges
     << " delta_inserts=" << delta_inserts << " delta_deletes=" << delta_deletes
     << " rederived=" << rederived
     << " adorned_rules=" << adorned_rules << " magic_rules=" << magic_rules
     << " magic_facts=" << magic_facts;
  return os.str();
}

std::map<std::string, Relation> Evaluate(const Program& program,
                                         const EvalOptions& options,
                                         EvalStats* stats) {
  if (options.demand_goal) {
    // Rewrite for the goal, evaluate the rewritten program with the same
    // options, then splice the goal-filtered answers back under the goal's
    // original predicate name. When the transform degenerates to the
    // identity (all-free pattern, un-chaseable goal) this is a plain
    // evaluation plus, for a bound pattern, the goal filter.
    const DemandGoal& goal = *options.demand_goal;
    MagicProgram magic = MagicTransform(program, goal);
    EvalOptions inner = options;
    inner.demand_goal.reset();
    std::map<std::string, Relation> extents =
        Evaluate(magic.transformed ? magic.program : program, inner, stats);
    if (stats) {
      stats->adorned_rules = magic.adorned_rules;
      stats->magic_rules = magic.magic_rules;
      for (const std::string& pred : magic.magic_preds) {
        auto it = extents.find(pred);
        if (it != extents.end()) stats->magic_facts += it->second.size();
      }
    }
    if (!magic.transformed && !goal.AnyBound()) return extents;
    auto it = extents.find(magic.goal_pred);
    Relation answers = it == extents.end()
                           ? Relation()
                           : FilterByPattern(it->second, goal.pattern);
    extents[goal.pred] = std::move(answers);
    return extents;
  }

  EvalStats scratch;
  EvalStats* s = stats ? stats : &scratch;
  std::map<std::string, int> stratum = Stratify(program);
  int max_stratum = 0;
  for (const auto& [pred, st] : stratum) {
    (void)pred;
    max_stratum = std::max(max_stratum, st);
  }
  s->strata = max_stratum + 1;
  const bool indexed = options.strategy == Strategy::kSemiNaive;
  const bool semi_naive = options.strategy != Strategy::kNaive;
  int num_threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                             : options.num_threads;
  // The scan ablation strategies are sequential by definition.
  const bool parallel = indexed && num_threads > 1;

  std::map<std::string, Relation> extents = program.facts();
  // Freeze the extent map's structure before anything runs: every head
  // predicate gets its entry now, so concurrent units never mutate the map
  // itself — only the relation each owns exclusively.
  for (const Rule& rule : program.rules()) extents[rule.head.pred];
  State state;
  state.full = &extents;
  IndexCache index_cache;

  std::vector<Unit> units = BuildUnits(program);
  s->units = static_cast<int>(units.size());
  s->threads = parallel ? num_threads : 1;
  std::mutex stats_mu;

  const Rule* rules_base = program.rules().data();
  if (!parallel) {
    for (int u : TopoOrder(units)) {
      EvalUnit(units[u], indexed, semi_naive, options.max_iterations,
               options.plan_order_seed, rules_base, &state, &index_cache,
               /*pool=*/nullptr, s, &stats_mu);
    }
    return extents;
  }

  // Topologically schedule the unit DAG on the pool: a unit launches as
  // soon as its last dependency completes; independent units (and their
  // inner chunk tasks) interleave freely across the workers. The pool is
  // the process-wide shared one for this thread count — spawning (and
  // joining) a fresh pool per Evaluate call was pure overhead on small
  // fixpoints and is the first thing incremental maintenance would feel.
  ThreadPool& pool = ThreadPool::Shared(num_threads);
  ThreadPool::Stats pool_before = pool.stats();
  std::vector<std::atomic<int>> remaining(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    remaining[u].store(units[u].num_deps, std::memory_order_relaxed);
  }
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> launched{0};
  ThreadPool::TaskGroup group(&pool);
  std::function<void(int)> launch = [&](int u) {
    launched.fetch_add(1, std::memory_order_relaxed);
    group.Run([&, u] {
      try {
        if (!failed.load(std::memory_order_acquire)) {
          EvalUnit(units[u], indexed, semi_naive, options.max_iterations,
                   options.plan_order_seed, rules_base, &state, &index_cache,
                   &pool, s, &stats_mu);
        }
      } catch (...) {
        // Successors are never launched; Wait() rethrows this.
        failed.store(true, std::memory_order_release);
        throw;
      }
      for (int v : units[u].succs) {
        if (remaining[v].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          launch(v);
        }
      }
    });
  };
  for (size_t u = 0; u < units.size(); ++u) {
    if (units[u].num_deps == 0) launch(static_cast<int>(u));
  }
  group.Wait();

  // Unit-launch tasks counted here, chunk tasks locally in EvalUnit — the
  // same population a per-call pool used to report. Steals come from the
  // shared pool's cumulative counters, so the delta is approximate when
  // other evaluations overlap on the same pool (par_* counters are
  // documented as scheduling-dependent and excluded from the fuzzer's
  // equality invariants).
  s->par_tasks += launched.load(std::memory_order_relaxed);
  ThreadPool::Stats pool_after = pool.stats();
  s->par_steals += pool_after.TotalSteals() - pool_before.TotalSteals();
  return extents;
}

bool EdbDelta::empty() const {
  for (const auto& [pred, rel] : inserts) {
    (void)pred;
    if (!rel.empty()) return false;
  }
  for (const auto& [pred, rel] : deletes) {
    (void)pred;
    if (!rel.empty()) return false;
  }
  return true;
}

DeltaResult EvaluateDelta(const Program& program,
                          const std::map<std::string, Relation>& base_facts,
                          const EdbDelta& delta,
                          std::map<std::string, Relation>* extents,
                          const EvalOptions& options, EvalStats* stats,
                          IndexCache* cache) {
  DeltaResult result;
  if (options.demand_goal) {
    result.supported = false;
    result.unsupported_reason =
        "demand_goal set: maintain the transformed program instead";
    return result;
  }

  // Predicates the delta can possibly touch: the changed predicates closed
  // over rule dependencies (positive and negative edges alike).
  std::set<std::string> affected;
  for (const auto& [pred, rel] : delta.inserts) {
    if (!rel.empty()) affected.insert(pred);
  }
  for (const auto& [pred, rel] : delta.deletes) {
    if (!rel.empty()) affected.insert(pred);
  }
  if (affected.empty()) return result;
  for (bool grew = true; grew;) {
    grew = false;
    for (const Rule& rule : program.rules()) {
      if (affected.count(rule.head.pred)) continue;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kPositive &&
            lit.kind != Literal::Kind::kNegative) {
          continue;
        }
        if (affected.count(lit.atom.pred)) {
          affected.insert(rule.head.pred);
          grew = true;
          break;
        }
      }
    }
  }
  // Negation over an affected predicate is non-monotone under the delta —
  // an insert-only update can then both create and destroy derived tuples,
  // which neither the resumed semi-naive pass nor DRed models. Punt to a
  // full recompute (the caller's contract).
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kNegative &&
          affected.count(lit.atom.pred)) {
        result.supported = false;
        result.unsupported_reason =
            "negation over delta-affected predicate '" + lit.atom.pred + "'";
        return result;
      }
    }
  }

  EvalStats scratch;
  EvalStats* s = stats ? stats : &scratch;
  std::map<std::string, int> stratum = Stratify(program);
  int max_stratum = 0;
  for (const auto& [pred, st] : stratum) {
    (void)pred;
    max_stratum = std::max(max_stratum, st);
  }
  s->strata = max_stratum + 1;
  int num_threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                             : options.num_threads;
  ThreadPool* pool =
      num_threads > 1 ? &ThreadPool::Shared(num_threads) : nullptr;
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  std::mutex stats_mu;

  // Freeze the extent map's structure up front, same discipline as
  // Evaluate: every rule head and every delta predicate has its entry
  // before anything runs.
  for (const Rule& rule : program.rules()) (*extents)[rule.head.pred];
  for (const auto& [pred, rel] : delta.inserts) {
    (void)rel;
    (*extents)[pred];
  }
  for (const auto& [pred, rel] : delta.deletes) {
    (void)rel;
    (*extents)[pred];
  }

  State state;
  state.full = extents;
  std::vector<Unit> units = BuildUnits(program);
  std::vector<int> order = TopoOrder(units);
  s->units = static_cast<int>(units.size());
  s->threads = pool != nullptr ? num_threads : 1;
  const Rule* rules_base = program.rules().data();

  EvalStats local;  // the sequential delete phases' counters

  // ---- Deletes: DRed. Phase 1, over-delete — everything with a derivation
  // through a deleted tuple, computed semi-naive style against the OLD
  // state (extents are not touched until the over-delete set is complete).
  DeltaMap del;
  for (const auto& [pred, rel] : delta.deletes) {
    const Relation& target = extents->at(pred);
    rel.ForEach([&](const TupleRef& t) {
      if (target.Contains(t)) del[pred].Insert(t);
    });
  }
  bool any_del = false;
  for (const auto& [pred, rel] : del) {
    (void)pred;
    if (!rel.empty()) any_del = true;
  }

  if (any_del) {
    std::map<std::pair<const Rule*, int>, RulePlan> od_plans;
    auto od_plan = [&](const Rule* rule, int li) -> const RulePlan& {
      auto key = std::make_pair(rule, li);
      auto it = od_plans.find(key);
      if (it == od_plans.end()) {
        it = od_plans.emplace(key, BuildPlan(*rule, li, state, 0)).first;
      }
      return it->second;
    };
    DeltaMap frontier = del;
    for (;;) {
      bool any = false;
      for (const auto& [pred, rel] : frontier) {
        (void)pred;
        if (!rel.empty()) {
          any = true;
          break;
        }
      }
      if (!any) break;
      ++local.iterations;
      DeltaMap newly;
      for (const Rule& rule : program.rules()) {
        for (size_t li = 0; li < rule.body.size(); ++li) {
          const Literal& lit = rule.body[li];
          if (lit.kind != Literal::Kind::kPositive) continue;
          const Relation* fr = FindDelta(frontier, lit.atom.pred);
          if (fr == nullptr || fr->empty()) continue;
          Relation cand;
          ExecPlan(rule, od_plan(&rule, static_cast<int>(li)), state, fr,
                   cache, &cand, &local, /*dedup_against=*/nullptr, 0,
                   static_cast<size_t>(-1));
          const Relation& head_ext = extents->at(rule.head.pred);
          Relation& head_del = del[rule.head.pred];
          Relation& head_new = newly[rule.head.pred];
          cand.ForEach([&](const TupleRef& t) {
            if (head_ext.Contains(t) && !head_del.Contains(t)) {
              head_new.Insert(t);
            }
          });
        }
      }
      for (auto& [pred, rel] : newly) del[pred].InsertAll(rel);
      frontier = std::move(newly);
    }

    // Phase 2, removal: erase the whole over-delete set at once.
    for (const auto& [pred, rel] : del) {
      Relation& target = extents->at(pred);
      std::vector<Tuple> doomed;
      doomed.reserve(rel.size());
      rel.ForEach([&](const TupleRef& t) { doomed.push_back(t.ToTuple()); });
      for (const Tuple& t : doomed) target.Erase(t);
    }

    // Phase 3, re-derivation: restore over-deleted tuples with a surviving
    // alternative proof. Units go in topo order so a tuple's supporting
    // predicates are already settled when it is probed; within a unit a
    // worklist loop handles mutual recursion (restoring one tuple can
    // re-support another). Probes pre-bind every head variable, so each
    // check is a point lookup, not a fixpoint. Re-derived tuples need no
    // downstream *insert* propagation: deletion never creates tuples, so
    // anything downstream of a restored tuple was only over-deleted via
    // this tuple and gets restored by its own unit's pass.
    for (int u : order) {
      const Unit& unit = units[u];
      struct PendingDel {
        const std::string* pred;
        Tuple t;
      };
      std::vector<PendingDel> pend;
      for (const std::string& pred : unit.heads) {
        const Relation* d = FindDelta(del, pred);
        if (d == nullptr) continue;
        d->ForEach(
            [&](const TupleRef& t) { pend.push_back({&pred, t.ToTuple()}); });
      }
      if (pend.empty()) continue;

      std::map<const Rule*, RulePlan> rd_plans;
      auto rd_plan = [&](const Rule* rule) -> const RulePlan& {
        auto it = rd_plans.find(rule);
        if (it == rd_plans.end()) {
          std::vector<bool> prebound(static_cast<size_t>(MaxVar(*rule) + 1),
                                     false);
          for (const Term& t : rule->head.terms) {
            if (t.is_var()) prebound[t.var] = true;
          }
          it = rd_plans.emplace(rule, BuildPlan(*rule, -1, state, 0, &prebound))
                   .first;
        }
        return it->second;
      };
      auto is_supported = [&](const std::string& pred, const Tuple& t) {
        auto bf = base_facts.find(pred);
        if (bf != base_facts.end() && bf->second.Contains(t)) return true;
        for (const Rule* rule : unit.rules) {
          if (rule->head.pred != pred) continue;
          if (rule->head.terms.size() != t.arity()) continue;
          const RulePlan& plan = rd_plan(rule);
          Bindings init(static_cast<size_t>(plan.num_vars));
          bool ok = true;
          for (size_t i = 0; i < rule->head.terms.size() && ok; ++i) {
            const Term& ht = rule->head.terms[i];
            if (!ht.is_var()) {
              ok = ht.constant == t[i];
            } else if (init[ht.var]) {
              ok = *init[ht.var] == t[i];
            } else {
              init[ht.var] = t[i];
            }
          }
          if (!ok) continue;
          Relation out;
          ExecPlan(*rule, plan, state, /*delta_rel=*/nullptr, cache, &out,
                   &local, /*dedup_against=*/nullptr, 0,
                   static_cast<size_t>(-1), &init);
          if (!out.empty()) return true;
        }
        return false;
      };

      for (bool changed = true; changed;) {
        changed = false;
        for (auto it = pend.begin(); it != pend.end();) {
          if (is_supported(*it->pred, it->t)) {
            extents->at(*it->pred).Insert(it->t);
            ++local.rederived;
            changed = true;
            it = pend.erase(it);
          } else {
            ++it;
          }
        }
      }
    }

    uint64_t total_del = 0;
    for (const auto& [pred, rel] : del) {
      (void)pred;
      total_del += rel.size();
    }
    local.delta_deletes += total_del - local.rederived;
  }

  // ---- Inserts: resume semi-naive with the inserted tuples as the delta
  // against the (post-delete) fixpoint. `pending` carries the not-yet-
  // propagated new tuples per predicate; each unit seeds from the pending
  // entries its bodies reference and contributes its newly derived tuples
  // back for the units downstream.
  DeltaMap pending;
  for (const auto& [pred, rel] : delta.inserts) {
    Relation& ext = extents->at(pred);
    Relation& pen = pending[pred];
    rel.ForEach([&](const TupleRef& t) {
      if (!ext.Contains(t)) pen.Insert(t);
    });
  }
  for (auto& [pred, rel] : pending) {
    if (rel.empty()) continue;
    extents->at(pred).InsertAll(rel);
    local.delta_inserts += rel.size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu);
    AccumulateCounters(s, local);
  }

  bool any_ins = false;
  for (const auto& [pred, rel] : pending) {
    (void)pred;
    if (!rel.empty()) any_ins = true;
  }
  if (any_ins) {
    for (int u : order) {
      const Unit& unit = units[u];
      DeltaMap seedmap;
      for (const Rule* rule : unit.rules) {
        for (const Literal& lit : rule->body) {
          if (lit.kind != Literal::Kind::kPositive) continue;
          if (seedmap.count(lit.atom.pred)) continue;
          const Relation* p = FindDelta(pending, lit.atom.pred);
          if (p == nullptr || p->empty()) continue;
          seedmap[lit.atom.pred] = *p;
        }
      }
      if (seedmap.empty()) continue;
      DeltaMap collected;
      EvalUnit(unit, /*indexed=*/true, /*semi_naive=*/true,
               options.max_iterations, options.plan_order_seed, rules_base,
               &state, cache, pool, s, &stats_mu, &seedmap, &collected);
      for (auto& [pred, rel] : collected) {
        if (rel.empty()) continue;
        s->delta_inserts += rel.size();
        pending[pred].InsertAll(rel);
      }
    }
  }
  return result;
}

namespace {

/// num_threads for the Strategy-only entry points: REL_EVAL_THREADS when
/// set (1..64; this is how CI runs the whole test suite under TSan with a
/// parallel evaluator), else 1.
int DefaultNumThreads() {
  static const int n = [] {
    const char* env = std::getenv("REL_EVAL_THREADS");
    if (env == nullptr) return 1;
    int v = std::atoi(env);
    return std::min(64, std::max(1, v));
  }();
  return n;
}

}  // namespace

std::map<std::string, Relation> Evaluate(const Program& program,
                                         Strategy strategy, EvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  options.num_threads = DefaultNumThreads();
  return Evaluate(program, options, stats);
}

Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           const EvalOptions& options, EvalStats* stats) {
  std::map<std::string, Relation> all = Evaluate(program, options, stats);
  auto it = all.find(pred);
  return it == all.end() ? Relation() : std::move(it->second);
}

Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           Strategy strategy, EvalStats* stats) {
  std::map<std::string, Relation> all = Evaluate(program, strategy, stats);
  auto it = all.find(pred);
  return it == all.end() ? Relation() : std::move(it->second);
}

}  // namespace datalog
}  // namespace rel
