#include "datalog/eval.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "base/error.h"
#include "base/hash.h"
#include "datalog/index.h"
#include "joins/leapfrog.h"

namespace rel {
namespace datalog {

namespace {

// --- stratification ----------------------------------------------------------

/// Assigns each predicate a stratum such that positive dependencies stay
/// within or below, and negative dependencies come from strictly below.
/// Classic iterate-to-fixpoint algorithm; throws kType on negative cycles.
std::map<std::string, int> Stratify(const Program& program) {
  std::map<std::string, int> stratum;
  for (const std::string& pred : program.Predicates()) stratum[pred] = 0;
  size_t n = stratum.size();
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > n + 1) {
      throw RelError(ErrorKind::kType,
                     "datalog program is not stratifiable (negation in a "
                     "recursive cycle)");
    }
    for (const Rule& rule : program.rules()) {
      int& head = stratum[rule.head.pred];
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kPositive) {
          if (stratum[lit.atom.pred] > head) {
            head = stratum[lit.atom.pred];
            changed = true;
          }
        } else if (lit.kind == Literal::Kind::kNegative) {
          if (stratum[lit.atom.pred] + 1 > head) {
            head = stratum[lit.atom.pred] + 1;
            changed = true;
          }
        }
      }
    }
  }
  return stratum;
}

// --- scalar evaluation -------------------------------------------------------

std::optional<Value> EvalArith(ArithOp op, const Value& a, const Value& b) {
  auto both_int = a.is_int() && b.is_int();
  if (!a.is_number() || !b.is_number()) return std::nullopt;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Value::Int(a.AsInt() + b.AsInt())
                      : Value::Float(a.AsDouble() + b.AsDouble());
    case ArithOp::kSub:
      return both_int ? Value::Int(a.AsInt() - b.AsInt())
                      : Value::Float(a.AsDouble() - b.AsDouble());
    case ArithOp::kMul:
      return both_int ? Value::Int(a.AsInt() * b.AsInt())
                      : Value::Float(a.AsDouble() * b.AsDouble());
    case ArithOp::kDiv: {
      if (b.AsDouble() == 0) return std::nullopt;
      if (both_int) {
        int64_t x = a.AsInt();
        int64_t y = b.AsInt();
        if (y == -1) {
          // INT64_MIN / -1 overflows (UB); promote that one case to float.
          if (x == INT64_MIN) return Value::Float(-static_cast<double>(x));
          return Value::Int(-x);
        }
        if (x % y == 0) return Value::Int(x / y);
      }
      return Value::Float(a.AsDouble() / b.AsDouble());
    }
    case ArithOp::kMod: {
      if (!both_int || b.AsInt() == 0) return std::nullopt;
      // x % -1 is 0 for all x, but the instruction traps on INT64_MIN (UB).
      if (b.AsInt() == -1) return Value::Int(0);
      return Value::Int(a.AsInt() % b.AsInt());
    }
    case ArithOp::kMin:
      return a.NumericCompare(b) == Value::Ordering::kGreater ? b : a;
    case ArithOp::kMax:
      return a.NumericCompare(b) == Value::Ordering::kLess ? b : a;
  }
  return std::nullopt;
}

bool EvalCompare(CmpOp op, const Value& a, const Value& b) {
  Value::Ordering o = a.NumericCompare(b);
  switch (op) {
    case CmpOp::kEq: return o == Value::Ordering::kEqual;
    case CmpOp::kNeq: return o != Value::Ordering::kEqual &&
                             o != Value::Ordering::kUnordered;
    case CmpOp::kLt: return o == Value::Ordering::kLess;
    case CmpOp::kLe: return o == Value::Ordering::kLess ||
                            o == Value::Ordering::kEqual;
    case CmpOp::kGt: return o == Value::Ordering::kGreater;
    case CmpOp::kGe: return o == Value::Ordering::kGreater ||
                            o == Value::Ordering::kEqual;
  }
  return false;
}

/// Mutable per-rule binding vector (variables are dense ids).
using Bindings = std::vector<std::optional<Value>>;

int MaxVar(const Rule& rule) {
  int max_var = -1;
  auto scan_atom = [&max_var](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) max_var = std::max(max_var, t.var);
    }
  };
  scan_atom(rule.head);
  for (const Literal& lit : rule.body) {
    scan_atom(lit.atom);
    if (lit.lhs.is_var()) max_var = std::max(max_var, lit.lhs.var);
    if (lit.rhs.is_var()) max_var = std::max(max_var, lit.rhs.var);
    max_var = std::max(max_var, lit.target);
  }
  return max_var;
}

/// The evaluator state: predicate extents plus per-iteration deltas.
struct State {
  std::map<std::string, Relation> full;
  std::map<std::string, Relation> delta;

  const Relation& Full(const std::string& pred) const {
    static const Relation* empty = new Relation();
    auto it = full.find(pred);
    return it == full.end() ? *empty : it->second;
  }

  const std::vector<Tuple>& DeltaRows(const std::string& pred,
                                      size_t arity) const {
    static const std::vector<Tuple>* empty = new std::vector<Tuple>();
    auto it = delta.find(pred);
    return it == delta.end() ? *empty : it->second.TuplesOfArity(arity);
  }
};

/// Builds the head tuple and inserts it into `out` (scan-path variant).
void EmitHead(const Rule& rule, const Bindings& bindings, Relation* out,
              EvalStats* stats) {
  Tuple head;
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) {
      if (!bindings[t.var]) {
        throw RelError(ErrorKind::kSafety,
                       "head variable unbound in rule for '" + rule.head.pred +
                           "'");
      }
      head.Append(*bindings[t.var]);
    } else {
      head.Append(t.constant);
    }
  }
  if (stats) ++stats->tuples_derived;
  out->Insert(head);
}

/// Indexed-path emit: gathers the head values into the caller's reusable
/// scratch buffer and inserts the span straight into `out`'s column arena —
/// no per-candidate Tuple allocation. When `dedup_against` is non-null,
/// tuples already in that extent are dropped at the source — the fixpoint
/// diff happens here, with no intermediate relation and no copy-and-sort.
void EmitHeadColumnar(const Rule& rule, const Bindings& bindings,
                      std::vector<Value>& scratch, Relation* out,
                      EvalStats* stats, const Relation* dedup_against) {
  scratch.clear();
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) {
      if (!bindings[t.var]) {
        throw RelError(ErrorKind::kSafety,
                       "head variable unbound in rule for '" + rule.head.pred +
                           "'");
      }
      scratch.push_back(*bindings[t.var]);
    } else {
      scratch.push_back(t.constant);
    }
  }
  if (stats) ++stats->tuples_derived;
  if (dedup_against &&
      dedup_against->Contains(scratch.data(), scratch.size())) {
    return;
  }
  out->Insert(scratch.data(), scratch.size());
}

// --- scan-based evaluation (kNaive / kSemiNaiveScan ablation baseline) -------

/// Evaluates one rule by nested-loop scans; `delta_index`, when >= 0, forces
/// that positive-atom occurrence to range over the delta relation.
void EvalRuleScan(const Rule& rule, const State& state, int delta_index,
                  Relation* out, EvalStats* stats) {
  Bindings bindings(static_cast<size_t>(MaxVar(rule) + 1));

  std::function<void(size_t)> step = [&](size_t li) {
    if (li == rule.body.size()) {
      EmitHead(rule, bindings, out, stats);
      return;
    }
    const Literal& lit = rule.body[li];
    auto value_of = [&](const Term& t) -> std::optional<Value> {
      if (!t.is_var()) return t.constant;
      return bindings[t.var];
    };
    switch (lit.kind) {
      case Literal::Kind::kPositive: {
        bool use_delta = static_cast<int>(li) == delta_index;
        const std::vector<Tuple>* rows =
            use_delta
                ? &state.DeltaRows(lit.atom.pred, lit.atom.terms.size())
                : &state.Full(lit.atom.pred)
                       .TuplesOfArity(lit.atom.terms.size());
        if (stats) {
          bool any_bound = false;
          for (const Term& t : lit.atom.terms) {
            if (!t.is_var() || bindings[t.var]) {
              any_bound = true;
              break;
            }
          }
          if (use_delta) {
            ++stats->delta_scans;
          } else if (any_bound) {
            ++stats->full_scans;
          } else {
            ++stats->driver_scans;
          }
        }
        for (const Tuple& row : *rows) {
          bool ok = true;
          std::vector<int> newly_bound;
          for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
            const Term& t = lit.atom.terms[i];
            if (!t.is_var()) {
              ok = row[i] == t.constant;
            } else if (bindings[t.var]) {
              ok = row[i] == *bindings[t.var];
            } else {
              bindings[t.var] = row[i];
              newly_bound.push_back(t.var);
            }
          }
          if (ok) step(li + 1);
          for (int v : newly_bound) bindings[v].reset();
        }
        return;
      }
      case Literal::Kind::kNegative: {
        Tuple probe;
        for (const Term& t : lit.atom.terms) {
          std::optional<Value> v = value_of(t);
          if (!v) {
            throw RelError(ErrorKind::kSafety,
                           "variable in negated atom of rule for '" +
                               rule.head.pred + "' is unbound");
          }
          probe.Append(*v);
        }
        if (!state.Full(lit.atom.pred).Contains(probe)) step(li + 1);
        return;
      }
      case Literal::Kind::kCompare: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          // An equality with exactly one side known acts as a binding; the
          // unknown side is necessarily a variable (constants always have a
          // value). Handles both `V = c` and `c = V`.
          if (lit.cmp_op == CmpOp::kEq && (!a != !b)) {
            const Term& unbound = a ? lit.rhs : lit.lhs;
            const Value& known = a ? *a : *b;
            bindings[unbound.var] = known;
            step(li + 1);
            bindings[unbound.var].reset();
            return;
          }
          throw RelError(ErrorKind::kSafety,
                         "comparison over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        if (EvalCompare(lit.cmp_op, *a, *b)) step(li + 1);
        return;
      }
      case Literal::Kind::kAssign: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          throw RelError(ErrorKind::kSafety,
                         "assignment over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        std::optional<Value> r = EvalArith(lit.arith_op, *a, *b);
        if (!r) return;
        if (bindings[lit.target]) {
          if (*bindings[lit.target] == *r) step(li + 1);
          return;
        }
        bindings[lit.target] = *r;
        step(li + 1);
        bindings[lit.target].reset();
        return;
      }
    }
  };
  step(0);
}

// --- join planning (kSemiNaive) ----------------------------------------------

/// One step of a compiled rule plan.
struct PlanStep {
  enum class Kind {
    kScanDelta,  // scan the semi-naive delta occurrence (always first)
    kScanFull,   // scan an all-free leading atom
    kProbe,      // probe the (pred, arity, key_positions) hash index
    kNegation,   // all-bound negated atom: Contains check
    kFilter,     // all-bound comparison
    kBind,       // equality with one unbound variable side: binds it
    kAssign,     // arithmetic assignment; operands bound
  };
  Kind kind;
  size_t lit_index = 0;
  std::vector<size_t> key_positions;  // kProbe: columns bound at entry
  bool bind_lhs = false;              // kBind: the lhs is the unbound side
};

/// A compiled per-(rule, delta-occurrence) evaluation plan.
struct RulePlan {
  std::vector<PlanStep> steps;
  int num_vars = 0;
  bool leapfrog = false;  // route the whole body through LeapfrogJoin
};

/// True if the rule body is a pure conjunction of >= 2 all-variable positive
/// atoms with no repeated variables inside an atom and every rule variable
/// covered — the shape LeapfrogJoin handles once columns are permuted into
/// the global variable order.
bool LeapfrogEligible(const Rule& rule, int num_vars) {
  if (rule.body.size() < 2 || num_vars == 0) return false;
  std::vector<bool> covered(num_vars, false);
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kPositive) return false;
    if (lit.atom.terms.empty()) return false;
    std::vector<bool> in_atom(num_vars, false);
    for (const Term& t : lit.atom.terms) {
      if (!t.is_var()) return false;
      if (in_atom[t.var]) return false;
      in_atom[t.var] = true;
      covered[t.var] = true;
    }
  }
  for (int v = 0; v < num_vars; ++v) {
    if (!covered[v]) return false;
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && !covered[t.var]) return false;
  }
  return true;
}

/// Compiles the join plan for one (rule, delta-occurrence) pair: delta atom
/// first, filters/bindings/assignments/negations hoisted as early as their
/// variables allow, remaining positive atoms ordered greedily by bound-column
/// count with estimated cardinality as tie-break. Throws kSafety when the
/// rule is not range-restricted.
RulePlan BuildPlan(const Rule& rule, int delta_index, const State& state) {
  RulePlan plan;
  plan.num_vars = MaxVar(rule) + 1;
  if (delta_index < 0 && LeapfrogEligible(rule, plan.num_vars)) {
    plan.leapfrog = true;
    return plan;
  }

  size_t n = rule.body.size();
  std::vector<bool> done(n, false);
  std::vector<bool> bound(plan.num_vars, false);
  auto term_known = [&](const Term& t) { return !t.is_var() || bound[t.var]; };
  auto bind_atom_vars = [&](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) bound[t.var] = true;
    }
  };
  // True if some positive atom or assignment will bind `var` once planned.
  // Equalities on such variables must stay filters (EvalCompare equates
  // Int 1 with Float 1.0) rather than become bindings checked with
  // type-exact index hashes or tuple equality.
  auto bound_elsewhere = [&](int var) {
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kAssign && lit.target == var) {
        return true;
      }
      if (lit.kind != Literal::Kind::kPositive) continue;
      for (const Term& t : lit.atom.terms) {
        if (t.is_var() && t.var == var) return true;
      }
    }
    return false;
  };

  // Hoists every non-positive literal whose variables are available; repeats
  // because a hoisted assignment/binding can unlock further literals.
  auto hoist = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < n; ++i) {
        if (done[i]) continue;
        const Literal& lit = rule.body[i];
        switch (lit.kind) {
          case Literal::Kind::kPositive:
            break;
          case Literal::Kind::kNegative: {
            bool all = true;
            for (const Term& t : lit.atom.terms) all &= term_known(t);
            if (all) {
              plan.steps.push_back({PlanStep::Kind::kNegation, i, {}, false});
              done[i] = true;
              progress = true;
            }
            break;
          }
          case Literal::Kind::kCompare: {
            bool lk = term_known(lit.lhs);
            bool rk = term_known(lit.rhs);
            if (lk && rk) {
              plan.steps.push_back({PlanStep::Kind::kFilter, i, {}, false});
              done[i] = true;
              progress = true;
            } else if (lit.cmp_op == CmpOp::kEq && lk != rk &&
                       !bound_elsewhere((lk ? lit.rhs : lit.lhs).var)) {
              // Equality with exactly one side known binds the other side
              // (which is necessarily a variable) — but only for pure
              // output variables no atom will bind, preserving the
              // numeric-tolerant filter semantics for join variables.
              PlanStep s{PlanStep::Kind::kBind, i, {}, !lk};
              bound[(s.bind_lhs ? lit.lhs : lit.rhs).var] = true;
              plan.steps.push_back(std::move(s));
              done[i] = true;
              progress = true;
            }
            break;
          }
          case Literal::Kind::kAssign: {
            if (term_known(lit.lhs) && term_known(lit.rhs)) {
              plan.steps.push_back({PlanStep::Kind::kAssign, i, {}, false});
              bound[lit.target] = true;
              done[i] = true;
              progress = true;
            }
            break;
          }
        }
      }
    }
  };

  if (delta_index >= 0) {
    plan.steps.push_back(
        {PlanStep::Kind::kScanDelta, static_cast<size_t>(delta_index), {},
         false});
    bind_atom_vars(rule.body[delta_index].atom);
    done[delta_index] = true;
  }
  hoist();

  for (;;) {
    int best = -1;
    size_t best_bound = 0;
    size_t best_rows = 0;
    for (size_t i = 0; i < n; ++i) {
      if (done[i] || rule.body[i].kind != Literal::Kind::kPositive) continue;
      const Atom& atom = rule.body[i].atom;
      size_t nb = 0;
      for (const Term& t : atom.terms) nb += term_known(t);
      size_t rows = state.Full(atom.pred).CountOfArity(atom.terms.size());
      if (best < 0 || nb > best_bound ||
          (nb == best_bound && rows < best_rows)) {
        best = static_cast<int>(i);
        best_bound = nb;
        best_rows = rows;
      }
    }
    if (best < 0) break;
    const Atom& atom = rule.body[best].atom;
    PlanStep s{PlanStep::Kind::kProbe, static_cast<size_t>(best), {}, false};
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      if (term_known(atom.terms[p])) s.key_positions.push_back(p);
    }
    if (s.key_positions.empty()) s.kind = PlanStep::Kind::kScanFull;
    plan.steps.push_back(std::move(s));
    bind_atom_vars(atom);
    done[best] = true;
    hoist();
  }

  for (size_t i = 0; i < n; ++i) {
    if (!done[i]) {
      const char* what =
          rule.body[i].kind == Literal::Kind::kNegative
              ? "variable in negated atom of rule for '"
              : rule.body[i].kind == Literal::Kind::kCompare
                    ? "comparison over unbound variables in rule for '"
                    : "assignment over unbound variables in rule for '";
      throw RelError(ErrorKind::kSafety, what + rule.head.pred + "'");
    }
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && !bound[t.var]) {
      throw RelError(ErrorKind::kSafety,
                     "head variable unbound in rule for '" + rule.head.pred +
                         "'");
    }
  }
  return plan;
}

// --- plan execution ----------------------------------------------------------

/// Runs an all-positive all-variable rule through Leapfrog Triejoin.
/// Column-permuted sorted copies (the triejoin precondition) come from the
/// IndexCache — built once per (predicate, column order) per version instead
/// of rematerialized on every call.
void ExecLeapfrog(const Rule& rule, const RulePlan& plan, const State& state,
                  IndexCache* cache, Relation* out, EvalStats* stats,
                  const Relation* dedup_against) {
  std::vector<joins::AtomSpec> atoms;
  atoms.reserve(rule.body.size());
  for (const Literal& lit : rule.body) {
    // (var, column) pairs sorted by var give the triejoin column order.
    std::vector<std::pair<int, size_t>> order;
    order.reserve(lit.atom.terms.size());
    for (size_t p = 0; p < lit.atom.terms.size(); ++p) {
      order.emplace_back(lit.atom.terms[p].var, p);
    }
    std::sort(order.begin(), order.end());
    joins::AtomSpec spec;
    std::vector<size_t> col_order;
    col_order.reserve(order.size());
    for (const auto& [var, col] : order) {
      spec.vars.push_back(var);
      col_order.push_back(col);
    }
    spec.rel = &cache->GetSorted(lit.atom.pred, state.Full(lit.atom.pred),
                                 lit.atom.terms.size(), col_order,
                                 stats ? &stats->sorted_builds : nullptr);
    atoms.push_back(std::move(spec));
  }
  if (stats) ++stats->leapfrog_joins;
  std::vector<Value> scratch;
  scratch.reserve(rule.head.terms.size());
  joins::LeapfrogJoin(
      plan.num_vars, atoms, [&](const std::vector<Value>& binding) {
        scratch.clear();
        for (const Term& t : rule.head.terms) {
          scratch.push_back(t.is_var() ? binding[t.var] : t.constant);
        }
        if (stats) ++stats->tuples_derived;
        if (dedup_against &&
            dedup_against->Contains(scratch.data(), scratch.size())) {
          return;
        }
        out->Insert(scratch.data(), scratch.size());
      });
}

/// Executes a compiled plan: scans drive, probes follow, filters prune.
/// `out` receives only tuples not already in `dedup_against`.
void ExecPlan(const Rule& rule, const RulePlan& plan, const State& state,
              IndexCache* cache, Relation* out, EvalStats* stats,
              const Relation* dedup_against) {
  if (plan.leapfrog) {
    ExecLeapfrog(rule, plan, state, cache, out, stats, dedup_against);
    return;
  }
  Bindings bindings(static_cast<size_t>(plan.num_vars));
  // Reusable head-emission buffer: values stream from here straight into the
  // output relation's column arena, so no Tuple is allocated per derivation.
  std::vector<Value> head_buf;
  head_buf.reserve(rule.head.terms.size());
  // Reusable probe-key scratch, one buffer per plan step: a step never
  // re-enters itself while its own probe is live (recursion only descends),
  // so per-step reuse is safe and avoids an allocation per probe.
  std::vector<std::vector<Value>> key_bufs(plan.steps.size());
  // Index handles resolved at most once per step per rule evaluation:
  // extents are frozen while a plan runs (derivations go to a separate
  // relation), so the cache lookup — string/vector key construction plus a
  // map walk — must not sit on the per-probe path.
  std::vector<const HashIndex*> step_index(plan.steps.size(), nullptr);
  auto value_of = [&](const Term& t) -> const Value& {
    // Plan construction guarantees the term is known here.
    return t.is_var() ? *bindings[t.var] : t.constant;
  };

  auto step = [&](auto&& self, size_t si) -> void {
    if (si == plan.steps.size()) {
      EmitHeadColumnar(rule, bindings, head_buf, out, stats, dedup_against);
      return;
    }
    const PlanStep& ps = plan.steps[si];
    const Literal& lit = rule.body[ps.lit_index];

    // Matches `row` against the atom (binding fresh variables, checking
    // constants and repeated occurrences) and recurses on success.
    auto match_row = [&](const TupleRef& row) {
      bool ok = true;
      int newly_bound[8];
      size_t num_newly = 0;
      std::vector<int> overflow;
      for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
        const Term& t = lit.atom.terms[i];
        if (!t.is_var()) {
          ok = row[i] == t.constant;
        } else if (bindings[t.var]) {
          ok = row[i] == *bindings[t.var];
        } else {
          bindings[t.var] = row[i];
          if (num_newly < 8) {
            newly_bound[num_newly++] = t.var;
          } else {
            overflow.push_back(t.var);
          }
        }
      }
      if (ok) self(self, si + 1);
      for (size_t i = 0; i < num_newly; ++i) bindings[newly_bound[i]].reset();
      for (int v : overflow) bindings[v].reset();
    };

    switch (ps.kind) {
      case PlanStep::Kind::kScanDelta: {
        if (stats) ++stats->delta_scans;
        auto it = state.delta.find(lit.atom.pred);
        if (it != state.delta.end()) {
          // Insertion order; skips the per-round sort TuplesOfArity forces.
          it->second.ForEachOfArity(lit.atom.terms.size(), match_row);
        }
        return;
      }
      case PlanStep::Kind::kScanFull: {
        if (stats) ++stats->driver_scans;
        state.Full(lit.atom.pred)
            .ForEachOfArity(lit.atom.terms.size(), match_row);
        return;
      }
      case PlanStep::Kind::kProbe: {
        if (!step_index[si]) {
          step_index[si] = &cache->Get(
              lit.atom.pred, state.Full(lit.atom.pred), lit.atom.terms.size(),
              ps.key_positions, stats ? &stats->index_builds : nullptr);
        }
        const HashIndex& index = *step_index[si];
        std::vector<Value>& key = key_bufs[si];
        key.clear();
        for (size_t p : ps.key_positions) {
          key.push_back(value_of(lit.atom.terms[p]));
        }
        if (stats) ++stats->index_probes;
        index.Probe(key, match_row);
        return;
      }
      case PlanStep::Kind::kNegation: {
        std::vector<Value>& probe = key_bufs[si];
        probe.clear();
        for (const Term& t : lit.atom.terms) probe.push_back(value_of(t));
        if (!state.Full(lit.atom.pred).Contains(probe.data(), probe.size())) {
          self(self, si + 1);
        }
        return;
      }
      case PlanStep::Kind::kFilter: {
        if (EvalCompare(lit.cmp_op, value_of(lit.lhs), value_of(lit.rhs))) {
          self(self, si + 1);
        }
        return;
      }
      case PlanStep::Kind::kBind: {
        const Term& target = ps.bind_lhs ? lit.lhs : lit.rhs;
        const Term& source = ps.bind_lhs ? lit.rhs : lit.lhs;
        bindings[target.var] = value_of(source);
        self(self, si + 1);
        bindings[target.var].reset();
        return;
      }
      case PlanStep::Kind::kAssign: {
        std::optional<Value> r =
            EvalArith(lit.arith_op, value_of(lit.lhs), value_of(lit.rhs));
        if (!r) return;
        if (bindings[lit.target]) {
          if (*bindings[lit.target] == *r) self(self, si + 1);
          return;
        }
        bindings[lit.target] = *r;
        self(self, si + 1);
        bindings[lit.target].reset();
        return;
      }
    }
  };
  step(step, 0);
}

}  // namespace

std::map<std::string, Relation> Evaluate(const Program& program,
                                         Strategy strategy, EvalStats* stats) {
  EvalStats local;
  EvalStats* s = stats ? stats : &local;
  std::map<std::string, int> stratum = Stratify(program);
  int max_stratum = 0;
  for (const auto& [pred, st] : stratum) {
    (void)pred;
    max_stratum = std::max(max_stratum, st);
  }
  s->strata = max_stratum + 1;
  bool indexed = strategy == Strategy::kSemiNaive;
  bool semi_naive = strategy != Strategy::kNaive;

  State state;
  state.full = program.facts();
  IndexCache index_cache;

  for (int st = 0; st <= max_stratum; ++st) {
    std::vector<const Rule*> rules;
    for (const Rule& rule : program.rules()) {
      if (stratum[rule.head.pred] == st) rules.push_back(&rule);
    }
    if (rules.empty()) continue;

    // Join plans are computed once per stratum (cardinality estimates are
    // taken at first use) and keyed by (rule, delta occurrence).
    //
    // The indexed path streams fresh tuples straight into the per-round
    // `added` set, deduplicating against the full extent at the emit site —
    // no intermediate relation, no copy-and-sort. The scan path keeps the
    // derive-then-diff shape (ForEach + Contains) as the ablation baseline.
    std::map<std::pair<const Rule*, int>, RulePlan> plans;
    auto eval_rule = [&](const Rule* rule, int delta_index,
                         std::map<std::string, Relation>* added) {
      Relation& full = state.full[rule->head.pred];
      if (indexed) {
        auto key = std::make_pair(rule, delta_index);
        auto it = plans.find(key);
        if (it == plans.end()) {
          it = plans.emplace(key, BuildPlan(*rule, delta_index, state)).first;
        }
        ExecPlan(*rule, it->second, state, &index_cache,
                 &(*added)[rule->head.pred], s, &full);
        return;
      }
      Relation derived;
      EvalRuleScan(*rule, state, delta_index, &derived, s);
      derived.ForEach([&](const TupleRef& t) {
        if (!full.Contains(t)) (*added)[rule->head.pred].Insert(t);
      });
    };

    // Initial round: evaluate every rule fully.
    std::map<std::string, Relation> added;
    for (const Rule* rule : rules) {
      eval_rule(rule, /*delta_index=*/-1, &added);
    }
    for (auto& [pred, rel] : added) state.full[pred].InsertAll(rel);
    state.delta = std::move(added);
    ++s->iterations;

    // Iterate to fixpoint within the stratum.
    for (;;) {
      bool any_delta = false;
      for (const auto& [pred, rel] : state.delta) {
        (void)pred;
        if (!rel.empty()) any_delta = true;
      }
      if (!any_delta) break;
      ++s->iterations;
      std::map<std::string, Relation> next_added;
      for (const Rule* rule : rules) {
        if (semi_naive) {
          // One pass per recursive-atom occurrence, with that occurrence
          // restricted to the delta.
          for (size_t li = 0; li < rule->body.size(); ++li) {
            const Literal& lit = rule->body[li];
            if (lit.kind != Literal::Kind::kPositive) continue;
            if (stratum[lit.atom.pred] != st) continue;
            eval_rule(rule, static_cast<int>(li), &next_added);
          }
        } else {
          eval_rule(rule, /*delta_index=*/-1, &next_added);
        }
      }
      for (auto& [pred, rel] : next_added) state.full[pred].InsertAll(rel);
      state.delta = std::move(next_added);
    }
    state.delta.clear();
  }
  return state.full;
}

Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           Strategy strategy, EvalStats* stats) {
  std::map<std::string, Relation> all = Evaluate(program, strategy, stats);
  auto it = all.find(pred);
  return it == all.end() ? Relation() : std::move(it->second);
}

}  // namespace datalog
}  // namespace rel
