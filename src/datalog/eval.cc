#include "datalog/eval.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "base/error.h"
#include "base/hash.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "datalog/index.h"
#include "datalog/magic.h"
#include "joins/leapfrog.h"

namespace rel {
namespace datalog {

namespace {

// --- stratification ----------------------------------------------------------

/// Assigns each predicate a stratum such that positive dependencies stay
/// within or below, and negative dependencies come from strictly below.
/// Classic iterate-to-fixpoint algorithm; throws kType on negative cycles.
std::map<std::string, int> Stratify(const Program& program) {
  std::map<std::string, int> stratum;
  for (const std::string& pred : program.Predicates()) stratum[pred] = 0;
  size_t n = stratum.size();
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > n + 1) {
      throw RelError(ErrorKind::kType,
                     "datalog program is not stratifiable (negation in a "
                     "recursive cycle)");
    }
    for (const Rule& rule : program.rules()) {
      int& head = stratum[rule.head.pred];
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kPositive) {
          if (stratum[lit.atom.pred] > head) {
            head = stratum[lit.atom.pred];
            changed = true;
          }
        } else if (lit.kind == Literal::Kind::kNegative) {
          if (stratum[lit.atom.pred] + 1 > head) {
            head = stratum[lit.atom.pred] + 1;
            changed = true;
          }
        }
      }
    }
  }
  return stratum;
}

// --- scalar evaluation -------------------------------------------------------

/// Signed-overflow guard for the int lanes of +, -, * (and the sum/count
/// aggregate fold): i64 wraparound is UB, and the Rel interpreter's checked
/// kernels (core/builtins.cc) raise kType for the same inputs — both engines
/// must agree on the error, not on two different wrapped values.
int64_t CheckedI64(ArithOp op, int64_t a, int64_t b) {
  int64_t r = 0;
  bool overflow = false;
  switch (op) {
    case ArithOp::kAdd: overflow = __builtin_add_overflow(a, b, &r); break;
    case ArithOp::kSub: overflow = __builtin_sub_overflow(a, b, &r); break;
    case ArithOp::kMul: overflow = __builtin_mul_overflow(a, b, &r); break;
    default: InternalCheck(false, "CheckedI64 on a non-overflowing op");
  }
  if (overflow) {
    throw RelError(ErrorKind::kType,
                   "integer overflow: " + std::to_string(a) +
                       (op == ArithOp::kAdd ? " + "
                        : op == ArithOp::kSub ? " - "
                                              : " * ") +
                       std::to_string(b) + " exceeds the int64 range");
  }
  return r;
}

std::optional<Value> EvalArith(ArithOp op, const Value& a, const Value& b) {
  auto both_int = a.is_int() && b.is_int();
  if (!a.is_number() || !b.is_number()) return std::nullopt;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Value::Int(CheckedI64(op, a.AsInt(), b.AsInt()))
                      : Value::Float(a.AsDouble() + b.AsDouble());
    case ArithOp::kSub:
      return both_int ? Value::Int(CheckedI64(op, a.AsInt(), b.AsInt()))
                      : Value::Float(a.AsDouble() - b.AsDouble());
    case ArithOp::kMul:
      return both_int ? Value::Int(CheckedI64(op, a.AsInt(), b.AsInt()))
                      : Value::Float(a.AsDouble() * b.AsDouble());
    case ArithOp::kDiv: {
      if (b.AsDouble() == 0) return std::nullopt;
      if (both_int) {
        int64_t x = a.AsInt();
        int64_t y = b.AsInt();
        if (y == -1) {
          // INT64_MIN / -1 overflows (UB); promote that one case to float.
          if (x == INT64_MIN) return Value::Float(-static_cast<double>(x));
          return Value::Int(-x);
        }
        if (x % y == 0) return Value::Int(x / y);
      }
      return Value::Float(a.AsDouble() / b.AsDouble());
    }
    case ArithOp::kMod: {
      if (!both_int || b.AsInt() == 0) return std::nullopt;
      // x % -1 is 0 for all x, but the instruction traps on INT64_MIN (UB).
      if (b.AsInt() == -1) return Value::Int(0);
      return Value::Int(a.AsInt() % b.AsInt());
    }
    case ArithOp::kMin:
      return a.NumericCompare(b) == Value::Ordering::kGreater ? b : a;
    case ArithOp::kMax:
      return a.NumericCompare(b) == Value::Ordering::kLess ? b : a;
  }
  return std::nullopt;
}

bool EvalCompare(CmpOp op, const Value& a, const Value& b) {
  Value::Ordering o = a.NumericCompare(b);
  switch (op) {
    case CmpOp::kEq: return o == Value::Ordering::kEqual;
    case CmpOp::kNeq: return o != Value::Ordering::kEqual &&
                             o != Value::Ordering::kUnordered;
    case CmpOp::kLt: return o == Value::Ordering::kLess;
    case CmpOp::kLe: return o == Value::Ordering::kLess ||
                            o == Value::Ordering::kEqual;
    case CmpOp::kGt: return o == Value::Ordering::kGreater;
    case CmpOp::kGe: return o == Value::Ordering::kGreater ||
                            o == Value::Ordering::kEqual;
  }
  return false;
}

/// A kCompare literal's outcome: the comparison, complemented when the
/// literal is negated. The complement is over the whole outcome, so
/// kUnordered operands (where every plain comparison is false) satisfy
/// every negated comparison — the faithful `not (a < b)` semantics.
bool EvalCompareLit(const Literal& lit, const Value& a, const Value& b) {
  return EvalCompare(lit.cmp_op, a, b) != lit.negated;
}

// --- aggregate folds ---------------------------------------------------------
//
// These mirror the Rel interpreter's reduce kernels (core/builtins.cc
// rel_primitive_add / minimum / maximum) exactly — NOT EvalArith, whose
// kMin/kMax keep the first operand on an unordered comparison where the Rel
// kernels produce no value at all. Byte-identity of lowered aggregate
// extents with the interpreter rests on that distinction (NaN payloads, and
// kEqual ties keeping the first sorted operand's representation).

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
    case AggOp::kSum: return "sum";
    case AggOp::kCount: return "count";
  }
  return "?";
}

std::optional<Value> FoldStep(AggOp op, const Value& acc, const Value& v) {
  switch (op) {
    case AggOp::kSum:
    case AggOp::kCount: {
      if (acc.is_int() && v.is_int()) {
        return Value::Int(CheckedI64(ArithOp::kAdd, acc.AsInt(), v.AsInt()));
      }
      if (!acc.is_number() || !v.is_number()) return std::nullopt;
      return Value::Float(acc.AsDouble() + v.AsDouble());
    }
    case AggOp::kMin: {
      Value::Ordering c = acc.NumericCompare(v);
      if (c == Value::Ordering::kUnordered) return std::nullopt;
      return c == Value::Ordering::kGreater ? v : acc;
    }
    case AggOp::kMax: {
      Value::Ordering c = acc.NumericCompare(v);
      if (c == Value::Ordering::kUnordered) return std::nullopt;
      return c == Value::Ordering::kLess ? v : acc;
    }
  }
  return std::nullopt;
}

/// Folds one group's contribution bucket in sorted order, the same order
/// the Rel interpreter's `reduce` consumes a materialized abstraction: the
/// accumulator starts from the first sorted row's last column (the value;
/// witnesses occupy the leading columns) and steps through the rest. A step
/// with no result (mixed non-numeric payloads, NaN under min/max) makes the
/// whole group's result absent — an empty or undefined group emits NO row,
/// never a default.
std::optional<Value> FoldBucket(AggOp op, const Relation& bucket) {
  std::optional<Value> acc;
  for (const Tuple& t : bucket.SortedTuples()) {
    if (t.arity() == 0) continue;
    const Value& v = t[t.arity() - 1];
    if (!acc) {
      acc = v;
      continue;
    }
    acc = FoldStep(op, *acc, v);
    if (!acc) return std::nullopt;
  }
  return acc;
}

/// Mirrors the Rel `range` builtin (core/builtins.cc RangeBuiltin): yields
/// x = lo, lo+step, ..., <= hi for bound integer bounds with step > 0; a
/// present `x` is a membership test (one yield or none). Non-integer bounds
/// or step <= 0 yield nothing — same as the builtin, never an error. The
/// membership modulus runs in uint64 so an astronomically wide range stays
/// defined; the enumeration stops before a signed increment could wrap.
template <typename Fn>
void EvalRange(const Value& lo_v, const Value& hi_v, const Value& step_v,
               const std::optional<Value>& x, Fn&& yield) {
  if (!lo_v.is_int() || !hi_v.is_int() || !step_v.is_int()) return;
  int64_t lo = lo_v.AsInt();
  int64_t hi = hi_v.AsInt();
  int64_t step = step_v.AsInt();
  if (step <= 0) return;
  if (x) {
    if (!x->is_int()) return;
    int64_t v = x->AsInt();
    if (v >= lo && v <= hi &&
        (static_cast<uint64_t>(v) - static_cast<uint64_t>(lo)) %
                static_cast<uint64_t>(step) ==
            0) {
      yield(*x);
    }
    return;
  }
  for (int64_t v = lo; v <= hi;) {
    yield(Value::Int(v));
    if (__builtin_add_overflow(v, step, &v)) break;
  }
}

/// Mutable per-rule binding vector (variables are dense ids).
using Bindings = std::vector<std::optional<Value>>;

int MaxVar(const Rule& rule) {
  int max_var = -1;
  auto scan_atom = [&max_var](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) max_var = std::max(max_var, t.var);
    }
  };
  scan_atom(rule.head);
  for (const Literal& lit : rule.body) {
    scan_atom(lit.atom);
    if (lit.lhs.is_var()) max_var = std::max(max_var, lit.lhs.var);
    if (lit.rhs.is_var()) max_var = std::max(max_var, lit.rhs.var);
    max_var = std::max(max_var, lit.target);
  }
  return max_var;
}

/// The canonical predicate extents. In parallel evaluation the map
/// structure is frozen before any task runs (every head predicate gets its
/// entry up front), so concurrent units may read foreign extents and write
/// their own without synchronization — relation entries never move and each
/// is written by exactly one unit, only at its round barriers.
struct State {
  /// Not owned. Evaluate points this at a local map; EvaluateDelta points it
  /// at the caller's cached extents so maintenance mutates them in place.
  std::map<std::string, Relation>* full = nullptr;

  const Relation& Full(const std::string& pred) const {
    static const Relation* empty = new Relation();
    auto it = full->find(pred);
    return it == full->end() ? *empty : it->second;
  }
};

/// Per-unit delta extents for one semi-naive round. Unit-local: concurrent
/// units never share a DeltaMap.
using DeltaMap = std::map<std::string, Relation>;

const Relation* FindDelta(const DeltaMap& delta, const std::string& pred) {
  auto it = delta.find(pred);
  return it == delta.end() ? nullptr : &it->second;
}

/// Materialized delta rows for the scan-strategy ablation paths.
const std::vector<Tuple>& DeltaRows(const DeltaMap& delta,
                                    const std::string& pred, size_t arity) {
  static const std::vector<Tuple>* empty = new std::vector<Tuple>();
  const Relation* rel = FindDelta(delta, pred);
  return rel == nullptr ? *empty : rel->TuplesOfArity(arity);
}

/// Builds the head tuple and inserts it into `out` (scan-path variant).
void EmitHead(const Rule& rule, const Bindings& bindings, Relation* out,
              EvalStats* stats) {
  Tuple head;
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) {
      if (!bindings[t.var]) {
        throw RelError(ErrorKind::kSafety,
                       "head variable unbound in rule for '" + rule.head.pred +
                           "'");
      }
      head.Append(*bindings[t.var]);
    } else {
      head.Append(t.constant);
    }
  }
  if (stats) ++stats->tuples_derived;
  out->Insert(head);
}

/// Indexed-path emit: gathers the head values into the caller's reusable
/// scratch buffer and inserts the span straight into `out`'s column arena —
/// no per-candidate Tuple allocation. When `dedup_against` is non-null,
/// tuples already in that extent are dropped at the source — the fixpoint
/// diff happens here, with no intermediate relation and no copy-and-sort.
void EmitHeadColumnar(const Rule& rule, const Bindings& bindings,
                      std::vector<Value>& scratch, Relation* out,
                      EvalStats* stats, const Relation* dedup_against) {
  scratch.clear();
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) {
      if (!bindings[t.var]) {
        throw RelError(ErrorKind::kSafety,
                       "head variable unbound in rule for '" + rule.head.pred +
                           "'");
      }
      scratch.push_back(*bindings[t.var]);
    } else {
      scratch.push_back(t.constant);
    }
  }
  if (stats) ++stats->tuples_derived;
  if (dedup_against &&
      dedup_against->Contains(scratch.data(), scratch.size())) {
    return;
  }
  out->Insert(scratch.data(), scratch.size());
}

// --- scan-based evaluation (kNaive / kSemiNaiveScan ablation baseline) -------

/// Evaluates one rule by nested-loop scans; `delta_index`, when >= 0, forces
/// that positive-atom occurrence to range over the delta relation.
void EvalRuleScan(const Rule& rule, const State& state, const DeltaMap& delta,
                  int delta_index, Relation* out, EvalStats* stats) {
  Bindings bindings(static_cast<size_t>(MaxVar(rule) + 1));

  std::function<void(size_t)> step = [&](size_t li) {
    if (li == rule.body.size()) {
      EmitHead(rule, bindings, out, stats);
      return;
    }
    const Literal& lit = rule.body[li];
    auto value_of = [&](const Term& t) -> std::optional<Value> {
      if (!t.is_var()) return t.constant;
      return bindings[t.var];
    };
    switch (lit.kind) {
      case Literal::Kind::kPositive: {
        bool use_delta = static_cast<int>(li) == delta_index;
        const std::vector<Tuple>* rows =
            use_delta
                ? &DeltaRows(delta, lit.atom.pred, lit.atom.terms.size())
                : &state.Full(lit.atom.pred)
                       .TuplesOfArity(lit.atom.terms.size());
        if (stats) {
          bool any_bound = false;
          for (const Term& t : lit.atom.terms) {
            if (!t.is_var() || bindings[t.var]) {
              any_bound = true;
              break;
            }
          }
          if (use_delta) {
            ++stats->delta_scans;
          } else if (any_bound) {
            ++stats->full_scans;
          } else {
            ++stats->driver_scans;
          }
        }
        for (const Tuple& row : *rows) {
          bool ok = true;
          std::vector<int> newly_bound;
          for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
            const Term& t = lit.atom.terms[i];
            if (!t.is_var()) {
              ok = row[i] == t.constant;
            } else if (bindings[t.var]) {
              ok = row[i] == *bindings[t.var];
            } else {
              bindings[t.var] = row[i];
              newly_bound.push_back(t.var);
            }
          }
          if (ok) step(li + 1);
          for (int v : newly_bound) bindings[v].reset();
        }
        return;
      }
      case Literal::Kind::kNegative: {
        Tuple probe;
        for (const Term& t : lit.atom.terms) {
          std::optional<Value> v = value_of(t);
          if (!v) {
            throw RelError(ErrorKind::kSafety,
                           "variable in negated atom of rule for '" +
                               rule.head.pred + "' is unbound");
          }
          probe.Append(*v);
        }
        if (!state.Full(lit.atom.pred).Contains(probe)) step(li + 1);
        return;
      }
      case Literal::Kind::kCompare: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          // An equality with exactly one side known acts as a binding; the
          // unknown side is necessarily a variable (constants always have a
          // value). Handles both `V = c` and `c = V`. Negated equalities
          // never bind — `not (V = c)` constrains, it does not produce.
          if (lit.cmp_op == CmpOp::kEq && !lit.negated && (!a != !b)) {
            const Term& unbound = a ? lit.rhs : lit.lhs;
            const Value& known = a ? *a : *b;
            bindings[unbound.var] = known;
            step(li + 1);
            bindings[unbound.var].reset();
            return;
          }
          throw RelError(ErrorKind::kSafety,
                         "comparison over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        if (EvalCompareLit(lit, *a, *b)) step(li + 1);
        return;
      }
      case Literal::Kind::kAssign: {
        std::optional<Value> a = value_of(lit.lhs);
        std::optional<Value> b = value_of(lit.rhs);
        if (!a || !b) {
          throw RelError(ErrorKind::kSafety,
                         "assignment over unbound variables in rule for '" +
                             rule.head.pred + "'");
        }
        std::optional<Value> r = EvalArith(lit.arith_op, *a, *b);
        if (!r) return;
        if (bindings[lit.target]) {
          if (*bindings[lit.target] == *r) step(li + 1);
          return;
        }
        bindings[lit.target] = *r;
        step(li + 1);
        bindings[lit.target].reset();
        return;
      }
      case Literal::Kind::kRange: {
        std::optional<Value> lo = value_of(lit.atom.terms[0]);
        std::optional<Value> hi = value_of(lit.atom.terms[1]);
        std::optional<Value> st = value_of(lit.atom.terms[2]);
        if (!lo || !hi || !st) {
          throw RelError(ErrorKind::kSafety,
                         "range bounds unbound in rule for '" +
                             rule.head.pred + "'");
        }
        const Term& xt = lit.atom.terms[3];
        std::optional<Value> x = value_of(xt);
        if (x) {
          EvalRange(*lo, *hi, *st, x, [&](const Value&) { step(li + 1); });
        } else {
          EvalRange(*lo, *hi, *st, std::nullopt, [&](const Value& v) {
            bindings[xt.var] = v;
            step(li + 1);
            bindings[xt.var].reset();
          });
        }
        return;
      }
    }
  };
  step(0);
}

// --- join planning (kSemiNaive) ----------------------------------------------

/// One step of a compiled rule plan.
struct PlanStep {
  enum class Kind {
    kScanDelta,  // scan the semi-naive delta occurrence (always first)
    kScanFull,   // scan an all-free leading atom
    kProbe,      // probe the (pred, arity, key_positions) hash index
    kNegation,   // all-bound negated atom: Contains check
    kFilter,     // all-bound comparison
    kBind,       // equality with one unbound variable side: binds it
    kAssign,     // arithmetic assignment; operands bound
    kRange,      // range generator; lo/hi/step bound, enumerates or tests x
  };
  Kind kind;
  size_t lit_index = 0;
  std::vector<size_t> key_positions;  // kProbe: columns bound at entry
  bool bind_lhs = false;              // kBind: the lhs is the unbound side
};

/// A compiled per-(rule, delta-occurrence) evaluation plan.
struct RulePlan {
  std::vector<PlanStep> steps;
  int num_vars = 0;
  bool leapfrog = false;  // route the whole body through LeapfrogJoin
};

/// True if the rule body is a pure conjunction of >= 2 all-variable positive
/// atoms with no repeated variables inside an atom and every rule variable
/// covered — the shape LeapfrogJoin handles once columns are permuted into
/// the global variable order.
bool LeapfrogEligible(const Rule& rule, int num_vars) {
  if (rule.body.size() < 2 || num_vars == 0) return false;
  std::vector<bool> covered(num_vars, false);
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kPositive) return false;
    if (lit.atom.terms.empty()) return false;
    std::vector<bool> in_atom(num_vars, false);
    for (const Term& t : lit.atom.terms) {
      if (!t.is_var()) return false;
      if (in_atom[t.var]) return false;
      in_atom[t.var] = true;
      covered[t.var] = true;
    }
  }
  for (int v = 0; v < num_vars; ++v) {
    if (!covered[v]) return false;
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && !covered[t.var]) return false;
  }
  return true;
}

/// Compiles the join plan for one (rule, delta-occurrence) pair: delta atom
/// first, filters/bindings/assignments/negations hoisted as early as their
/// variables allow, remaining positive atoms ordered greedily by bound-column
/// count with estimated cardinality as tie-break. A nonzero `order_seed`
/// replaces the greedy order with a seeded pseudo-random permutation of the
/// positive atoms (and skips the leapfrog routing) — the fuzzer's
/// plan-order lattice; every permutation is answer-equivalent because
/// safety is re-checked below and match_row verifies already-bound
/// variables regardless of which atom bound them first. Throws kSafety
/// when the rule is not range-restricted.
RulePlan BuildPlan(const Rule& rule, int delta_index, const State& state,
                   uint64_t order_seed,
                   const std::vector<bool>* prebound = nullptr) {
  RulePlan plan;
  plan.num_vars = MaxVar(rule) + 1;
  if (order_seed == 0 && delta_index < 0 && prebound == nullptr &&
      LeapfrogEligible(rule, plan.num_vars)) {
    plan.leapfrog = true;
    return plan;
  }

  size_t n = rule.body.size();
  std::vector<bool> done(n, false);
  // `prebound` marks variables the caller will bind before execution (the
  // DRed re-derivation point probes pre-bind every head variable), so the
  // planner can key probes on them from the first atom.
  std::vector<bool> bound(plan.num_vars, false);
  if (prebound != nullptr) bound = *prebound;
  auto term_known = [&](const Term& t) { return !t.is_var() || bound[t.var]; };
  auto bind_atom_vars = [&](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) bound[t.var] = true;
    }
  };
  // True if some positive atom or assignment will bind `var` once planned.
  // Equalities on such variables must stay filters (EvalCompare equates
  // Int 1 with Float 1.0) rather than become bindings checked with
  // type-exact index hashes or tuple equality.
  auto bound_elsewhere = [&](int var) {
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kAssign && lit.target == var) {
        return true;
      }
      if (lit.kind == Literal::Kind::kRange) {
        const Term& x = lit.atom.terms[3];
        if (x.is_var() && x.var == var) return true;
        continue;
      }
      if (lit.kind != Literal::Kind::kPositive) continue;
      for (const Term& t : lit.atom.terms) {
        if (t.is_var() && t.var == var) return true;
      }
    }
    return false;
  };

  // Hoists every non-positive literal whose variables are available; repeats
  // because a hoisted assignment/binding can unlock further literals.
  auto hoist = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < n; ++i) {
        if (done[i]) continue;
        const Literal& lit = rule.body[i];
        switch (lit.kind) {
          case Literal::Kind::kPositive:
            break;
          case Literal::Kind::kNegative: {
            bool all = true;
            for (const Term& t : lit.atom.terms) all &= term_known(t);
            if (all) {
              plan.steps.push_back({PlanStep::Kind::kNegation, i, {}, false});
              done[i] = true;
              progress = true;
            }
            break;
          }
          case Literal::Kind::kCompare: {
            bool lk = term_known(lit.lhs);
            bool rk = term_known(lit.rhs);
            if (lk && rk) {
              plan.steps.push_back({PlanStep::Kind::kFilter, i, {}, false});
              done[i] = true;
              progress = true;
            } else if (lit.cmp_op == CmpOp::kEq && !lit.negated && lk != rk &&
                       !bound_elsewhere((lk ? lit.rhs : lit.lhs).var)) {
              // Equality with exactly one side known binds the other side
              // (which is necessarily a variable) — but only for pure
              // output variables no atom will bind, preserving the
              // numeric-tolerant filter semantics for join variables.
              PlanStep s{PlanStep::Kind::kBind, i, {}, !lk};
              bound[(s.bind_lhs ? lit.lhs : lit.rhs).var] = true;
              plan.steps.push_back(std::move(s));
              done[i] = true;
              progress = true;
            }
            break;
          }
          case Literal::Kind::kAssign: {
            if (term_known(lit.lhs) && term_known(lit.rhs)) {
              plan.steps.push_back({PlanStep::Kind::kAssign, i, {}, false});
              bound[lit.target] = true;
              done[i] = true;
              progress = true;
            }
            break;
          }
          case Literal::Kind::kRange: {
            if (term_known(lit.atom.terms[0]) &&
                term_known(lit.atom.terms[1]) &&
                term_known(lit.atom.terms[2])) {
              plan.steps.push_back({PlanStep::Kind::kRange, i, {}, false});
              const Term& x = lit.atom.terms[3];
              if (x.is_var()) bound[x.var] = true;
              done[i] = true;
              progress = true;
            }
            break;
          }
        }
      }
    }
  };

  if (delta_index >= 0) {
    plan.steps.push_back(
        {PlanStep::Kind::kScanDelta, static_cast<size_t>(delta_index), {},
         false});
    bind_atom_vars(rule.body[delta_index].atom);
    done[delta_index] = true;
  }
  hoist();

  Rng order_rng(order_seed);
  for (;;) {
    int best = -1;
    if (order_seed != 0) {
      // Seeded permutation: pick uniformly among the not-yet-planned
      // positive atoms. Deterministic in (seed, rule, delta occurrence).
      size_t candidates = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!done[i] && rule.body[i].kind == Literal::Kind::kPositive) {
          ++candidates;
        }
      }
      if (candidates > 0) {
        size_t pick = order_rng.NextBelow(candidates);
        for (size_t i = 0; i < n; ++i) {
          if (done[i] || rule.body[i].kind != Literal::Kind::kPositive) {
            continue;
          }
          if (pick-- == 0) {
            best = static_cast<int>(i);
            break;
          }
        }
      }
    } else {
      size_t best_bound = 0;
      size_t best_rows = 0;
      for (size_t i = 0; i < n; ++i) {
        if (done[i] || rule.body[i].kind != Literal::Kind::kPositive) continue;
        const Atom& atom = rule.body[i].atom;
        size_t nb = 0;
        for (const Term& t : atom.terms) nb += term_known(t);
        size_t rows = state.Full(atom.pred).CountOfArity(atom.terms.size());
        if (best < 0 || nb > best_bound ||
            (nb == best_bound && rows < best_rows)) {
          best = static_cast<int>(i);
          best_bound = nb;
          best_rows = rows;
        }
      }
    }
    if (best < 0) break;
    const Atom& atom = rule.body[best].atom;
    PlanStep s{PlanStep::Kind::kProbe, static_cast<size_t>(best), {}, false};
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      if (term_known(atom.terms[p])) s.key_positions.push_back(p);
    }
    if (s.key_positions.empty()) s.kind = PlanStep::Kind::kScanFull;
    plan.steps.push_back(std::move(s));
    bind_atom_vars(atom);
    done[best] = true;
    hoist();
  }

  for (size_t i = 0; i < n; ++i) {
    if (!done[i]) {
      const char* what =
          rule.body[i].kind == Literal::Kind::kNegative
              ? "variable in negated atom of rule for '"
              : rule.body[i].kind == Literal::Kind::kCompare
                    ? "comparison over unbound variables in rule for '"
                    : rule.body[i].kind == Literal::Kind::kRange
                          ? "range bounds unbound in rule for '"
                          : "assignment over unbound variables in rule for '";
      throw RelError(ErrorKind::kSafety, what + rule.head.pred + "'");
    }
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && !bound[t.var]) {
      throw RelError(ErrorKind::kSafety,
                     "head variable unbound in rule for '" + rule.head.pred +
                         "'");
    }
  }
  return plan;
}

// --- plan execution ----------------------------------------------------------

/// Runs an all-positive all-variable rule through Leapfrog Triejoin.
/// Column-permuted sorted copies (the triejoin precondition) come from the
/// IndexCache — built once per (predicate, column order) per version instead
/// of rematerialized on every call.
void ExecLeapfrog(const Rule& rule, const RulePlan& plan, const State& state,
                  IndexCache* cache, Relation* out, EvalStats* stats,
                  const Relation* dedup_against) {
  std::vector<joins::AtomSpec> atoms;
  atoms.reserve(rule.body.size());
  for (const Literal& lit : rule.body) {
    // (var, column) pairs sorted by var give the triejoin column order.
    std::vector<std::pair<int, size_t>> order;
    order.reserve(lit.atom.terms.size());
    for (size_t p = 0; p < lit.atom.terms.size(); ++p) {
      order.emplace_back(lit.atom.terms[p].var, p);
    }
    std::sort(order.begin(), order.end());
    joins::AtomSpec spec;
    std::vector<size_t> col_order;
    col_order.reserve(order.size());
    for (const auto& [var, col] : order) {
      spec.vars.push_back(var);
      col_order.push_back(col);
    }
    spec.rel = &cache->GetSorted(lit.atom.pred, state.Full(lit.atom.pred),
                                 lit.atom.terms.size(), col_order,
                                 stats ? &stats->sorted_builds : nullptr);
    atoms.push_back(std::move(spec));
  }
  if (stats) ++stats->leapfrog_joins;
  std::vector<Value> scratch;
  scratch.reserve(rule.head.terms.size());
  joins::LeapfrogJoin(
      plan.num_vars, atoms, [&](const std::vector<Value>& binding) {
        scratch.clear();
        for (const Term& t : rule.head.terms) {
          scratch.push_back(t.is_var() ? binding[t.var] : t.constant);
        }
        if (stats) ++stats->tuples_derived;
        if (dedup_against &&
            dedup_against->Contains(scratch.data(), scratch.size())) {
          return;
        }
        out->Insert(scratch.data(), scratch.size());
      });
}

/// Executes a compiled plan: scans drive, probes follow, filters prune.
/// `out` receives only tuples not already in `dedup_against`.
///
/// `delta_rel` is the delta extent the kScanDelta step ranges over (null
/// when the plan has none). [drv_begin, drv_end) restricts the *first* plan
/// step's scan to that row range — the parallel evaluator's chunked-driver
/// partitioning; callers only pass a proper sub-range when step 0 is a
/// kScanDelta/kScanFull. Everything this function touches is read-only
/// except `out` and `stats`, both task-local under parallel evaluation.
void ExecPlan(const Rule& rule, const RulePlan& plan, const State& state,
              const Relation* delta_rel, IndexCache* cache, Relation* out,
              EvalStats* stats, const Relation* dedup_against,
              size_t drv_begin, size_t drv_end,
              const Bindings* initial = nullptr) {
  if (plan.leapfrog) {
    ExecLeapfrog(rule, plan, state, cache, out, stats, dedup_against);
    return;
  }
  Bindings bindings = initial != nullptr
                          ? *initial
                          : Bindings(static_cast<size_t>(plan.num_vars));
  // Reusable head-emission buffer: values stream from here straight into the
  // output relation's column arena, so no Tuple is allocated per derivation.
  std::vector<Value> head_buf;
  head_buf.reserve(rule.head.terms.size());
  // Reusable probe-key scratch, one buffer per plan step: a step never
  // re-enters itself while its own probe is live (recursion only descends),
  // so per-step reuse is safe and avoids an allocation per probe.
  std::vector<std::vector<Value>> key_bufs(plan.steps.size());
  // Index handles resolved at most once per step per rule evaluation:
  // extents are frozen while a plan runs (derivations go to a separate
  // relation), so the cache lookup — string/vector key construction plus a
  // map walk — must not sit on the per-probe path.
  std::vector<const HashIndex*> step_index(plan.steps.size(), nullptr);
  auto value_of = [&](const Term& t) -> const Value& {
    // Plan construction guarantees the term is known here.
    return t.is_var() ? *bindings[t.var] : t.constant;
  };

  auto step = [&](auto&& self, size_t si) -> void {
    if (si == plan.steps.size()) {
      EmitHeadColumnar(rule, bindings, head_buf, out, stats, dedup_against);
      return;
    }
    const PlanStep& ps = plan.steps[si];
    const Literal& lit = rule.body[ps.lit_index];

    // Matches `row` against the atom (binding fresh variables, checking
    // constants and repeated occurrences) and recurses on success.
    auto match_row = [&](const TupleRef& row) {
      bool ok = true;
      int newly_bound[8];
      size_t num_newly = 0;
      std::vector<int> overflow;
      for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
        const Term& t = lit.atom.terms[i];
        if (!t.is_var()) {
          ok = row[i] == t.constant;
        } else if (bindings[t.var]) {
          ok = row[i] == *bindings[t.var];
        } else {
          bindings[t.var] = row[i];
          if (num_newly < 8) {
            newly_bound[num_newly++] = t.var;
          } else {
            overflow.push_back(t.var);
          }
        }
      }
      if (ok) self(self, si + 1);
      for (size_t i = 0; i < num_newly; ++i) bindings[newly_bound[i]].reset();
      for (int v : overflow) bindings[v].reset();
    };

    switch (ps.kind) {
      case PlanStep::Kind::kScanDelta: {
        if (stats) ++stats->delta_scans;
        if (delta_rel != nullptr) {
          // Insertion order; skips the per-round sort TuplesOfArity forces.
          // kScanDelta is always step 0, so the driver range applies.
          delta_rel->ForEachOfArityRange(lit.atom.terms.size(), drv_begin,
                                         drv_end, match_row);
        }
        return;
      }
      case PlanStep::Kind::kScanFull: {
        if (stats) ++stats->driver_scans;
        const size_t begin = si == 0 ? drv_begin : 0;
        const size_t end = si == 0 ? drv_end : static_cast<size_t>(-1);
        state.Full(lit.atom.pred)
            .ForEachOfArityRange(lit.atom.terms.size(), begin, end,
                                 match_row);
        return;
      }
      case PlanStep::Kind::kProbe: {
        if (!step_index[si]) {
          step_index[si] = &cache->Get(
              lit.atom.pred, state.Full(lit.atom.pred), lit.atom.terms.size(),
              ps.key_positions, stats ? &stats->index_builds : nullptr,
              stats ? &stats->index_appends : nullptr);
        }
        const HashIndex& index = *step_index[si];
        std::vector<Value>& key = key_bufs[si];
        key.clear();
        for (size_t p : ps.key_positions) {
          key.push_back(value_of(lit.atom.terms[p]));
        }
        if (stats) ++stats->index_probes;
        index.Probe(key, match_row);
        return;
      }
      case PlanStep::Kind::kNegation: {
        std::vector<Value>& probe = key_bufs[si];
        probe.clear();
        for (const Term& t : lit.atom.terms) probe.push_back(value_of(t));
        if (!state.Full(lit.atom.pred).Contains(probe.data(), probe.size())) {
          self(self, si + 1);
        }
        return;
      }
      case PlanStep::Kind::kFilter: {
        if (EvalCompareLit(lit, value_of(lit.lhs), value_of(lit.rhs))) {
          self(self, si + 1);
        }
        return;
      }
      case PlanStep::Kind::kBind: {
        const Term& target = ps.bind_lhs ? lit.lhs : lit.rhs;
        const Term& source = ps.bind_lhs ? lit.rhs : lit.lhs;
        bindings[target.var] = value_of(source);
        self(self, si + 1);
        bindings[target.var].reset();
        return;
      }
      case PlanStep::Kind::kAssign: {
        std::optional<Value> r =
            EvalArith(lit.arith_op, value_of(lit.lhs), value_of(lit.rhs));
        if (!r) return;
        if (bindings[lit.target]) {
          if (*bindings[lit.target] == *r) self(self, si + 1);
          return;
        }
        bindings[lit.target] = *r;
        self(self, si + 1);
        bindings[lit.target].reset();
        return;
      }
      case PlanStep::Kind::kRange: {
        const Value& lo = value_of(lit.atom.terms[0]);
        const Value& hi = value_of(lit.atom.terms[1]);
        const Value& st = value_of(lit.atom.terms[2]);
        const Term& xt = lit.atom.terms[3];
        if (xt.is_var() && !bindings[xt.var]) {
          EvalRange(lo, hi, st, std::nullopt, [&](const Value& v) {
            bindings[xt.var] = v;
            self(self, si + 1);
            bindings[xt.var].reset();
          });
        } else {
          std::optional<Value> x =
              xt.is_var() ? bindings[xt.var]
                          : std::optional<Value>(xt.constant);
          EvalRange(lo, hi, st, x, [&](const Value&) { self(self, si + 1); });
        }
        return;
      }
    }
  };
  step(step, 0);
}

// --- units: the recursion components scheduled on the dependency DAG --------

/// One node of the evaluation DAG: a strongly-connected component of the
/// head-predicate dependency graph (a maximal set of mutually recursive
/// predicates) with all its rules. Each unit runs its own semi-naive
/// fixpoint loop; units joined by no dependency path are independent and
/// may evaluate concurrently. This refines the numeric strata: a stratum
/// whose predicates merely sit at the same negation depth splits into the
/// components that actually recurse together.
struct Unit {
  std::vector<const Rule*> rules;
  std::set<std::string> heads;
  std::vector<int> succs;  // units that depend on this unit
  int num_deps = 0;        // distinct predecessor units
};

/// Groups head predicates into units (Tarjan SCC, iterative) and wires the
/// dependency edges. Deterministic: DFS roots and adjacency follow program
/// order, and units are numbered by the first rule whose head belongs to
/// them. The condensation of a digraph is acyclic, so the result is a DAG;
/// Stratify() has already rejected components containing a negation.
std::vector<Unit> BuildUnits(const Program& program) {
  // Head predicates in first-appearance order, and their dependency
  // adjacency (body references to other head predicates, positive or
  // negative; EDB-only predicates are constants, not graph nodes).
  std::vector<std::string> preds;
  std::map<std::string, int> id_of;
  for (const Rule& rule : program.rules()) {
    if (id_of.emplace(rule.head.pred, preds.size()).second) {
      preds.push_back(rule.head.pred);
    }
  }
  const int n = static_cast<int>(preds.size());
  std::vector<std::vector<int>> adj(n);
  for (const Rule& rule : program.rules()) {
    int h = id_of.at(rule.head.pred);
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kPositive &&
          lit.kind != Literal::Kind::kNegative) {
        continue;
      }
      auto it = id_of.find(lit.atom.pred);
      if (it != id_of.end()) adj[h].push_back(it->second);
    }
  }

  // Iterative Tarjan.
  std::vector<int> index(n, -1), lowlink(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int num_comps = 0;
  struct Frame {
    int v;
    size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        int w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
        continue;
      }
      if (lowlink[f.v] == index[f.v]) {
        for (;;) {
          int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = num_comps;
          if (w == f.v) break;
        }
        ++num_comps;
      }
      int v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }

  // Units in order of first rule appearance.
  std::vector<Unit> units;
  std::map<int, int> unit_of_comp;
  for (const Rule& rule : program.rules()) {
    int c = comp[id_of.at(rule.head.pred)];
    auto [it, inserted] = unit_of_comp.emplace(c, units.size());
    if (inserted) units.emplace_back();
    Unit& unit = units[it->second];
    unit.rules.push_back(&rule);
    unit.heads.insert(rule.head.pred);
  }

  // Cross-unit dependency edges.
  std::vector<std::set<int>> deps_of(units.size());
  for (int v = 0; v < n; ++v) {
    int u = unit_of_comp.at(comp[v]);
    for (int w : adj[v]) {
      int uw = unit_of_comp.at(comp[w]);
      if (uw != u) deps_of[u].insert(uw);
    }
  }
  for (size_t u = 0; u < units.size(); ++u) {
    units[u].num_deps = static_cast<int>(deps_of[u].size());
    for (int v : deps_of[u]) units[v].succs.push_back(static_cast<int>(u));
  }
  return units;
}

/// Kahn topological order, smallest unit index first — the deterministic
/// sequential schedule (and the tie-break the parallel scheduler's launches
/// approximate).
std::vector<int> TopoOrder(const std::vector<Unit>& units) {
  std::vector<int> remaining(units.size());
  std::set<int> ready;
  for (size_t u = 0; u < units.size(); ++u) {
    remaining[u] = units[u].num_deps;
    if (remaining[u] == 0) ready.insert(static_cast<int>(u));
  }
  std::vector<int> order;
  order.reserve(units.size());
  while (!ready.empty()) {
    int u = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(u);
    for (int v : units[u].succs) {
      if (--remaining[v] == 0) ready.insert(v);
    }
  }
  InternalCheck(order.size() == units.size(), "unit graph is not a DAG");
  return order;
}

// --- aggregate qualification -------------------------------------------------

/// Per-predicate aggregate signature. Every aggregate rule of a predicate
/// must agree on the operator and the group arity (witness arity may differ
/// per rule — buckets hold mixed-arity contribution rows, sorted by
/// (arity, lex) exactly like a Rel abstraction's materialized relation).
struct AggSig {
  AggOp op = AggOp::kMin;
  size_t group_arity = 0;
};

/// Program-wide aggregate well-formedness, checked once per evaluation:
///
///   * a predicate's rules are either all plain or all aggregate (a plain
///     rule unioning extra rows into an aggregated extent has no reading
///     under either engine's semantics);
///   * all aggregate rules of a predicate share one operator and one group
///     arity — the extent is one (group..., result) row per group;
///   * no EDB facts on an aggregate predicate (facts are not contributions
///     and are not foldable rows).
///
/// Throws kType; returns the signature map for the unit-level checks.
std::map<std::string, AggSig> ValidateAggregates(const Program& program) {
  std::map<std::string, AggSig> sigs;
  std::set<std::string> plain;
  for (const Rule& rule : program.rules()) {
    if (!rule.agg) {
      plain.insert(rule.head.pred);
      continue;
    }
    AggSig sig{rule.agg->op, rule.head.terms.size()};
    auto [it, inserted] = sigs.emplace(rule.head.pred, sig);
    if (!inserted &&
        (it->second.op != sig.op || it->second.group_arity != sig.group_arity)) {
      throw RelError(ErrorKind::kType,
                     "aggregate rules for '" + rule.head.pred +
                         "' disagree on operator or group arity");
    }
  }
  for (const auto& [pred, sig] : sigs) {
    (void)sig;
    if (plain.count(pred)) {
      throw RelError(ErrorKind::kType,
                     "predicate '" + pred +
                         "' mixes plain and aggregate rules");
    }
    auto it = program.facts().find(pred);
    if (it != program.facts().end() && !it->second.empty()) {
      throw RelError(ErrorKind::kType,
                     "aggregate predicate '" + pred +
                         "' cannot carry EDB facts");
    }
  }
  return sigs;
}

/// Static monotonicity qualification for one aggregate rule in a recursive
/// min/max unit. `recursive` holds the unit's aggregate head predicates.
///
/// The semi-naive accumulator never retracts a contribution, so recursion
/// through an aggregate is sound only when every stale contribution (one
/// derived from a since-improved group result) is *dominated* by a fresh
/// one. We enforce that by dataflow: a variable bound from the result
/// column of a same-unit aggregate atom is tainted, taint flows only
/// through direction-preserving arithmetic (+, min, max, and subtraction
/// with an untainted right side), and a tainted value may reach only the
/// aggregated value/witness terms — never a comparison, a negation, a join
/// position, or a group column, all of which could make a stale row
/// non-dominated. Everything else throws kType (callers such as the Rel
/// lowering fall back to the interpreter's replacement semantics).
void CheckMonotoneRule(const Rule& rule, const std::set<std::string>& recursive,
                       const std::map<std::string, AggSig>& sigs) {
  auto fail = [&](const std::string& why) {
    throw RelError(ErrorKind::kType,
                   "non-monotone recursive aggregate in rule for '" +
                       rule.head.pred + "': " + why);
  };
  int max_var = MaxVar(rule);
  std::vector<bool> tainted(static_cast<size_t>(max_var + 1), false);
  // Seed: result columns of same-unit aggregate atoms. Count every
  // positive-atom occurrence of each variable along the way — a tainted
  // variable occurring in two atom positions is an equality join on a
  // changing value.
  std::vector<int> positive_occurrences(static_cast<size_t>(max_var + 1), 0);
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kPositive) continue;
    for (size_t i = 0; i < lit.atom.terms.size(); ++i) {
      const Term& t = lit.atom.terms[i];
      if (!t.is_var()) continue;
      ++positive_occurrences[t.var];
      if (recursive.count(lit.atom.pred) &&
          i + 1 == lit.atom.terms.size() &&
          lit.atom.terms.size() ==
              sigs.at(lit.atom.pred).group_arity + 1) {
        tainted[t.var] = true;
      }
    }
  }
  // Propagate through assignments to a fixpoint (hoisting means syntactic
  // order is not evaluation order).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAssign || tainted[lit.target]) continue;
      bool lhs_t = lit.lhs.is_var() && tainted[lit.lhs.var];
      bool rhs_t = lit.rhs.is_var() && tainted[lit.rhs.var];
      if (!lhs_t && !rhs_t) continue;
      bool preserving = lit.arith_op == ArithOp::kAdd ||
                        lit.arith_op == ArithOp::kMin ||
                        lit.arith_op == ArithOp::kMax ||
                        (lit.arith_op == ArithOp::kSub && !rhs_t);
      if (!preserving) {
        fail("a changing aggregate result flows through an operation that "
             "does not preserve its direction");
      }
      tainted[lit.target] = true;
      changed = true;
    }
  }
  // Usage restrictions.
  for (int v = 0; v <= max_var; ++v) {
    if (tainted[v] && positive_occurrences[v] > 1) {
      fail("a changing aggregate result is used as a join value");
    }
  }
  for (const Literal& lit : rule.body) {
    switch (lit.kind) {
      case Literal::Kind::kPositive:
        // Seeding already verified: a tainted var's one positive occurrence
        // IS its result-column binding site (any var first seen elsewhere
        // and also at a result column has two occurrences, caught above).
        break;
      case Literal::Kind::kNegative:
        for (const Term& t : lit.atom.terms) {
          if (t.is_var() && tainted[t.var]) {
            fail("a changing aggregate result feeds a negation");
          }
        }
        break;
      case Literal::Kind::kCompare:
        if ((lit.lhs.is_var() && tainted[lit.lhs.var]) ||
            (lit.rhs.is_var() && tainted[lit.rhs.var])) {
          fail("a changing aggregate result feeds a comparison filter");
        }
        break;
      case Literal::Kind::kAssign:
        break;
      case Literal::Kind::kRange:
        for (const Term& t : lit.atom.terms) {
          if (t.is_var() && tainted[t.var]) {
            fail("a changing aggregate result feeds a range generator");
          }
        }
        break;
    }
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && tainted[t.var]) {
      fail("a changing aggregate result appears in a group column");
    }
  }
  // Tainted values ARE allowed in the aggregated value and witness terms —
  // that is the point: stale rows there are dominated by fresher, better
  // ones under the unit's single min/max direction.
}

/// Per-group accumulator for one aggregate predicate: the set-deduplicated
/// contribution bucket, the currently published result (absent until the
/// first fold yields a value), and the round-local dirty flag.
struct AggGroup {
  Relation bucket;
  std::optional<Value> value;
  bool dirty = false;
};

/// Unit-local aggregate state for one aggregate predicate. `seen` is the
/// dedup authority across ALL rules of the predicate (mixed witness arities
/// included): a contribution row that ever entered a bucket never re-enters,
/// which both keeps set semantics (sum counts a deduplicated row once) and
/// makes the semi-naive re-derivations idempotent.
struct AggPredState {
  AggSig sig;
  Relation seen;
  std::map<Tuple, AggGroup> groups;  // deterministic refold order
};

/// Adds `from`'s counters into `into` (the per-unit/per-slot stats merge;
/// top-level fields strata/units/threads are set once by Evaluate).
void AccumulateCounters(EvalStats* into, const EvalStats& from) {
  into->iterations += from.iterations;
  into->tuples_derived += from.tuples_derived;
  into->index_builds += from.index_builds;
  into->index_appends += from.index_appends;
  into->sorted_builds += from.sorted_builds;
  into->index_probes += from.index_probes;
  into->full_scans += from.full_scans;
  into->driver_scans += from.driver_scans;
  into->delta_scans += from.delta_scans;
  into->leapfrog_joins += from.leapfrog_joins;
  into->aggregate_updates += from.aggregate_updates;
  into->groups_improved += from.groups_improved;
  into->par_tasks += from.par_tasks;
  into->par_steals += from.par_steals;
  into->par_merges += from.par_merges;
  into->delta_inserts += from.delta_inserts;
  into->delta_deletes += from.delta_deletes;
  into->rederived += from.rederived;
}

/// Driver scans shorter than this run as one task; longer ones split into
/// row-range chunks of at least this many rows. Chosen so a chunk amortizes
/// task dispatch (~µs) against a few thousand probe/emit operations.
constexpr size_t kMinChunkRows = 64;

/// Runs one unit's fixpoint loop to completion. Sequential when `pool` is
/// null; otherwise each (rule, delta-occurrence) plan becomes a task per
/// round (large drivers split into row-range chunks), tasks emit into
/// per-thread staging relations deduplicated against the frozen extents,
/// and the staging buffers merge into the canonical state at the round
/// barrier — the single-writer discipline that keeps every concurrent read
/// lock-free. Counter totals land in `out_stats` under `stats_mu`.
/// `plan_seed` is EvalOptions::plan_order_seed; `rules_base` is the start
/// of the program's rule vector, giving every rule a stable index so the
/// per-(rule, delta) permutation sub-seed is identical across runs (rule
/// POINTERS vary run to run and must never feed the seed).
/// `seed`, when non-null, switches the unit into *maintenance* mode: the
/// initial full round is skipped and the fixpoint resumes with `*seed` as
/// the first delta (tuples already merged into the full extents by the
/// caller — the delta ⊆ full invariant semi-naive relies on). The first
/// round runs one delta-variant per positive occurrence of ANY seeded
/// predicate (EDB or lower-unit preds included, not just this unit's
/// heads); later rounds revert to the standard heads-only filter. `collect`,
/// when non-null, accumulates every tuple the unit newly added to the full
/// extents — the downstream delta for units that depend on this one.
void EvalUnit(const Unit& unit, bool indexed, bool semi_naive,
              int max_iterations, uint64_t plan_seed, const Rule* rules_base,
              State* state, IndexCache* cache, ThreadPool* pool,
              EvalStats* out_stats, std::mutex* stats_mu,
              const DeltaMap* seed = nullptr, DeltaMap* collect = nullptr) {
  EvalStats local;
  // Fires when max_iterations > 0 and this unit's fixpoint exceeds it — the
  // guard against value-generating recursion that never converges.
  auto check_cap = [&] {
    if (max_iterations <= 0 || local.iterations <= max_iterations) return;
    std::string heads;
    for (const std::string& pred : unit.heads) {
      if (!heads.empty()) heads += ", ";
      heads += pred;
    }
    throw RelError(ErrorKind::kNonConvergent,
                   "datalog fixpoint for unit {" + heads +
                       "} did not converge within max_iterations = " +
                       std::to_string(max_iterations) +
                       " rounds; the partial extent is discarded");
  };

  // ---- Aggregate preparation. Aggregate rules are rewritten to internal
  // "contribution rules" — same body, head extended with the witness and
  // value terms — and run through the ordinary plan/scan machinery. Their
  // derivations land in per-group buckets instead of the extents; the dirty
  // groups refold at the round barrier (publish_round below), and a changed
  // (group..., result) row replaces the old extent row and becomes the next
  // delta: monotone aggregate updates instead of set union.
  std::map<std::string, AggPredState> agg;
  std::map<std::string, AggSig> agg_sigs;
  for (const Rule* rule : unit.rules) {
    if (!rule->agg) continue;
    AggSig sig{rule->agg->op, rule->head.terms.size()};
    agg_sigs.emplace(rule->head.pred, sig);  // consistency checked program-wide
    agg[rule->head.pred].sig = sig;
  }
  bool agg_recursive = false;
  if (!agg.empty()) {
    InternalCheck(seed == nullptr && collect == nullptr,
                  "aggregate units cannot run in maintenance mode");
    for (const Rule* rule : unit.rules) {
      for (const Literal& lit : rule->body) {
        if (lit.kind != Literal::Kind::kPositive ||
            agg.count(lit.atom.pred) == 0) {
          continue;
        }
        agg_recursive = true;
        if (!rule->agg) {
          throw RelError(
              ErrorKind::kType,
              "plain rule for '" + rule->head.pred +
                  "' reads aggregate predicate '" + lit.atom.pred +
                  "' inside the same recursive component; aggregate results "
                  "are only stable once their component converges");
        }
      }
    }
  }
  if (agg_recursive) {
    // One improvement direction per component: every aggregate rule must
    // share the operator, and for min/max every rule must pass the static
    // monotonicity qualification. Recursive sum/count carries no static
    // check — the dynamic emit-once guard in publish_round throws the
    // moment a contribution reaches an already-published group.
    AggOp recursive_op = AggOp::kMin;
    bool first = true;
    for (const Rule* rule : unit.rules) {
      if (!rule->agg) continue;
      if (first) {
        recursive_op = rule->agg->op;
        first = false;
      } else if (rule->agg->op != recursive_op) {
        throw RelError(ErrorKind::kType,
                       "mixed aggregate operators in one recursive component "
                       "(every rule must improve results in one direction)");
      }
    }
    if (recursive_op == AggOp::kMin || recursive_op == AggOp::kMax) {
      std::set<std::string> rec_preds;
      for (const auto& [pred, st] : agg) {
        (void)st;
        rec_preds.insert(pred);
      }
      for (const Rule* rule : unit.rules) {
        CheckMonotoneRule(*rule, rec_preds, agg_sigs);
      }
    }
  }

  // The executable rule list: plain rules as written, aggregate rules in
  // their expanded contribution form. `index` is the ORIGINAL rule's stable
  // index (the expansion keeps the body, so the plan permutation space is
  // unchanged) — never pointer arithmetic on the expanded storage.
  struct ExecRule {
    const Rule* rule;
    size_t index;
  };
  std::vector<Rule> expanded;
  expanded.reserve(unit.rules.size());
  std::vector<ExecRule> exec_rules;
  exec_rules.reserve(unit.rules.size());
  for (const Rule* rule : unit.rules) {
    size_t index = static_cast<size_t>(rule - rules_base);
    if (!rule->agg) {
      exec_rules.push_back({rule, index});
      continue;
    }
    Rule ex;
    ex.head.pred = rule->head.pred;
    ex.head.terms = rule->head.terms;
    for (const Term& w : rule->agg->witness) ex.head.terms.push_back(w);
    ex.head.terms.push_back(rule->agg->value);
    ex.body = rule->body;
    expanded.push_back(std::move(ex));
    exec_rules.push_back({&expanded.back(), index});
  }

  std::map<std::pair<const Rule*, int>, RulePlan> plans;
  // Plans are built at first use (cardinality estimates read the state at
  // that moment) and reused for the rest of the unit — the same timing in
  // sequential and parallel mode, so both produce identical plans.
  auto plan_for = [&](const Rule* rule, size_t rule_index,
                      int delta_index) -> const RulePlan& {
    auto key = std::make_pair(rule, delta_index);
    auto it = plans.find(key);
    if (it == plans.end()) {
      uint64_t sub_seed = plan_seed;
      if (sub_seed != 0) {
        // SplitMix-style mix of (seed, rule index, delta occurrence) so
        // every plan draws an independent, reproducible permutation.
        sub_seed ^= static_cast<uint64_t>(rule_index) *
                    0x9E3779B97F4A7C15ULL;
        sub_seed ^= static_cast<uint64_t>(delta_index + 2) *
                    0xBF58476D1CE4E5B9ULL;
        if (sub_seed == 0) sub_seed = 1;
      }
      it = plans.emplace(key, BuildPlan(*rule, delta_index, *state, sub_seed))
               .first;
    }
    return it->second;
  };

  DeltaMap delta;
  // One round entry: the executable rule, its stable plan-seed index, and
  // the delta occurrence (-1 for a full pass).
  struct Pair {
    const Rule* rule;
    size_t index;
    int di;
  };
  // Emit-site dedup authority: the full extent for plain heads, the
  // contributions-seen relation for aggregate heads (contribution rows
  // never touch the extents directly).
  auto dedup_for = [&](const Rule* rule) -> const Relation* {
    auto it = agg.find(rule->head.pred);
    return it == agg.end() ? &state->full->at(rule->head.pred)
                           : &it->second.seen;
  };

  // Evaluates the round's (rule, delta-occurrence) pairs into `added`.
  auto run_round = [&](const std::vector<Pair>& pairs, DeltaMap* added) {
    if (!indexed) {
      for (const auto& pr : pairs) {
        const Rule* rule = pr.rule;
        const Relation& dedup = *dedup_for(rule);
        Relation derived;
        EvalRuleScan(*rule, *state, delta, pr.di, &derived, &local);
        derived.ForEach([&](const TupleRef& t) {
          if (!dedup.Contains(t)) (*added)[rule->head.pred].Insert(t);
        });
      }
      return;
    }

    // Task list: one entry per (rule, delta) pair, or several when the
    // driver scan is large enough to chunk.
    struct Task {
      const Rule* rule;
      const RulePlan* plan;
      const Relation* delta_rel;
      size_t begin, end;
    };
    std::vector<Task> tasks;
    for (const auto& pr : pairs) {
      const Rule* rule = pr.rule;
      const int di = pr.di;
      const RulePlan& plan = plan_for(rule, pr.index, di);
      const Relation* delta_rel =
          di >= 0 ? FindDelta(delta, rule->body[di].atom.pred) : nullptr;
      size_t rows = static_cast<size_t>(-1);  // "not chunkable"
      if (pool != nullptr && !plan.leapfrog && !plan.steps.empty()) {
        const PlanStep& s0 = plan.steps[0];
        const Literal& lit = rule->body[s0.lit_index];
        if (s0.kind == PlanStep::Kind::kScanDelta) {
          rows = delta_rel == nullptr
                     ? 0
                     : delta_rel->CountOfArity(lit.atom.terms.size());
        } else if (s0.kind == PlanStep::Kind::kScanFull) {
          rows = state->Full(lit.atom.pred)
                     .CountOfArity(lit.atom.terms.size());
        }
      }
      if (pool == nullptr || rows == static_cast<size_t>(-1) ||
          rows < 2 * kMinChunkRows) {
        tasks.push_back({rule, &plan, delta_rel, 0, static_cast<size_t>(-1)});
        continue;
      }
      size_t chunks =
          std::min(static_cast<size_t>(pool->num_slots()) * 2,
                   (rows + kMinChunkRows - 1) / kMinChunkRows);
      size_t per = (rows + chunks - 1) / chunks;
      for (size_t b = 0; b < rows; b += per) {
        tasks.push_back({rule, &plan, delta_rel, b, std::min(b + per, rows)});
      }
    }

    if (pool == nullptr) {
      for (const Task& t : tasks) {
        ExecPlan(*t.rule, *t.plan, *state, t.delta_rel, cache,
                 &(*added)[t.rule->head.pred], &local, dedup_for(t.rule),
                 t.begin, t.end);
      }
      return;
    }

    // Per-thread staging: each slot is written by at most one thread at a
    // time (a thread runs one task at a time and every task addresses its
    // own slot), so no emit ever takes a lock.
    struct SlotStage {
      std::map<std::string, Relation> rels;
      EvalStats stats;
    };
    std::vector<SlotStage> staging(pool->num_slots());
    auto exec_task = [&](const Task& t) {
      SlotStage& stage = staging[pool->CurrentSlot()];
      ExecPlan(*t.rule, *t.plan, *state, t.delta_rel, cache,
               &stage.rels[t.rule->head.pred], &stage.stats,
               dedup_for(t.rule), t.begin, t.end);
    };
    if (tasks.size() == 1) {
      // A single task gains nothing from dispatch; run it right here.
      exec_task(tasks[0]);
    } else {
      local.par_tasks += tasks.size();
      ThreadPool::TaskGroup group(pool);
      for (const Task& t : tasks) {
        group.Run([&exec_task, t] { exec_task(t); });
      }
      group.Wait();
    }
    // Round barrier: merge the staging buffers (slot order, deterministic).
    // Emit-site dedup already dropped tuples present in the full extents;
    // InsertAll collapses duplicates derived by different tasks.
    for (SlotStage& stage : staging) {
      for (auto& [pred, rel] : stage.rels) {
        if (rel.empty()) continue;
        (*added)[pred].InsertAll(rel);
        ++local.par_merges;
      }
      AccumulateCounters(&local, stage.stats);
    }
  };

  // Round barrier, part two: publishes `added` into the canonical state and
  // returns the next delta. Plain predicates merge tuple-wise. Aggregate
  // predicates route their new contribution rows into the per-group
  // accumulators, refold the dirty groups in deterministic (std::map) order,
  // and replace each changed (group..., result) extent row — the changed
  // rows ARE the aggregate predicate's next delta. Runs sequentially on the
  // unit's thread, so the single-writer extent discipline holds.
  auto publish_round = [&](DeltaMap added) -> DeltaMap {
    for (auto& [pred, rel] : added) {
      auto agg_it = agg.find(pred);
      if (agg_it == agg.end()) {
        state->full->at(pred).InsertAll(rel);
        if (collect) (*collect)[pred].InsertAll(rel);
        continue;
      }
      AggPredState& ap = agg_it->second;
      const size_t g = ap.sig.group_arity;
      rel.ForEach([&](const TupleRef& row) {
        if (!ap.seen.Insert(row)) return;  // set semantics: counted once
        ++local.aggregate_updates;
        Tuple group;
        for (size_t i = 0; i < g && i < row.arity(); ++i) group.Append(row[i]);
        Tuple payload;  // (witness..., value)
        for (size_t i = g; i < row.arity(); ++i) payload.Append(row[i]);
        AggGroup& grp = ap.groups[std::move(group)];
        grp.bucket.Insert(std::move(payload));
        grp.dirty = true;
      });
      Relation changed;
      Relation& extent = state->full->at(pred);
      for (auto& [group, grp] : ap.groups) {
        if (!grp.dirty) continue;
        grp.dirty = false;
        if (grp.value.has_value() &&
            (ap.sig.op == AggOp::kSum || ap.sig.op == AggOp::kCount)) {
          // Emit-once: a sum/count result already fed back into the
          // fixpoint cannot absorb further contributions — unlike min/max,
          // a revised sum does not dominate derivations made from the stale
          // one. Level-indexed formulations (every contribution to a group
          // arrives in one round) evaluate cleanly; anything else is
          // non-monotone and must take the interpreter's semantics.
          throw RelError(
              ErrorKind::kType,
              std::string("recursive ") + AggOpName(ap.sig.op) + " for '" +
                  pred +
                  "' received a contribution after its group published; "
                  "only level-indexed recursive sums are monotone");
        }
        std::optional<Value> folded = FoldBucket(ap.sig.op, grp.bucket);
        if (!folded.has_value()) {
          if (grp.value.has_value()) {
            throw RelError(ErrorKind::kType,
                           "aggregate result for '" + pred +
                               "' became undefined after publication "
                               "(unordered payloads entered its bucket)");
          }
          continue;  // empty-or-undefined group: no row, never a default
        }
        if (grp.value.has_value()) {
          if (*grp.value == *folded) continue;
          // The refold ran over a superset of the old bucket, so min can
          // only decrease and max only increase; a regression means a
          // non-monotone shape escaped static qualification.
          Value::Ordering o = grp.value->NumericCompare(*folded);
          bool regressed =
              o == Value::Ordering::kUnordered ||
              (ap.sig.op == AggOp::kMin ? o == Value::Ordering::kLess
                                        : o == Value::Ordering::kGreater);
          if (regressed) {
            throw RelError(ErrorKind::kType,
                           "aggregate result for '" + pred +
                               "' regressed during the fixpoint; "
                               "non-monotone recursion");
          }
          Tuple old_row = group;
          old_row.Append(*grp.value);
          extent.Erase(old_row);
        }
        Tuple new_row = group;
        new_row.Append(*folded);
        extent.Insert(new_row);
        changed.Insert(std::move(new_row));
        grp.value = std::move(folded);
        ++local.groups_improved;
      }
      rel = std::move(changed);
    }
    return added;
  };

  bool seeded_round = seed != nullptr;
  if (seed == nullptr) {
    // Initial round: evaluate every rule of the unit fully.
    std::vector<Pair> init_pairs;
    init_pairs.reserve(exec_rules.size());
    for (const ExecRule& er : exec_rules) {
      init_pairs.push_back({er.rule, er.index, -1});
    }
    DeltaMap added;
    run_round(init_pairs, &added);
    delta = publish_round(std::move(added));
    ++local.iterations;
    check_cap();
  } else {
    delta = *seed;
  }

  // Iterate to fixpoint within the unit.
  for (;;) {
    bool any_delta = false;
    for (const auto& [pred, rel] : delta) {
      (void)pred;
      if (!rel.empty()) any_delta = true;
    }
    if (!any_delta) break;
    ++local.iterations;
    check_cap();
    std::vector<Pair> pairs;
    for (const ExecRule& er : exec_rules) {
      const Rule* rule = er.rule;
      if (semi_naive) {
        // One pass per recursive-atom occurrence, with that occurrence
        // restricted to the delta. The first maintenance round widens the
        // filter to every seeded predicate (the seed can live on EDB or
        // lower-unit preds no regular round would treat as a delta).
        for (size_t li = 0; li < rule->body.size(); ++li) {
          const Literal& lit = rule->body[li];
          if (lit.kind != Literal::Kind::kPositive) continue;
          if (seeded_round) {
            const Relation* d = FindDelta(delta, lit.atom.pred);
            if (d == nullptr || d->empty()) continue;
          } else if (unit.heads.count(lit.atom.pred) == 0) {
            continue;
          }
          pairs.push_back({rule, er.index, static_cast<int>(li)});
        }
      } else {
        pairs.push_back({rule, er.index, -1});
      }
    }
    seeded_round = false;
    DeltaMap next_added;
    run_round(pairs, &next_added);
    delta = publish_round(std::move(next_added));
  }

  std::lock_guard<std::mutex> lock(*stats_mu);
  AccumulateCounters(out_stats, local);
}

}  // namespace

std::string EvalStats::ToString() const {
  std::ostringstream os;
  os << "strata=" << strata << " units=" << units << " threads=" << threads
     << " iterations=" << iterations << " tuples_derived=" << tuples_derived
     << " index_builds=" << index_builds << " index_appends=" << index_appends
     << " sorted_builds=" << sorted_builds
     << " index_probes=" << index_probes << " full_scans=" << full_scans
     << " driver_scans=" << driver_scans << " delta_scans=" << delta_scans
     << " leapfrog_joins=" << leapfrog_joins
     << " aggregate_updates=" << aggregate_updates
     << " groups_improved=" << groups_improved << " par_tasks=" << par_tasks
     << " par_steals=" << par_steals << " par_merges=" << par_merges
     << " delta_inserts=" << delta_inserts << " delta_deletes=" << delta_deletes
     << " rederived=" << rederived
     << " adorned_rules=" << adorned_rules << " magic_rules=" << magic_rules
     << " magic_facts=" << magic_facts;
  return os.str();
}

std::map<std::string, Relation> Evaluate(const Program& program,
                                         const EvalOptions& options,
                                         EvalStats* stats) {
  if (options.demand_goal) {
    // Rewrite for the goal, evaluate the rewritten program with the same
    // options, then splice the goal-filtered answers back under the goal's
    // original predicate name. When the transform degenerates to the
    // identity (all-free pattern, un-chaseable goal) this is a plain
    // evaluation plus, for a bound pattern, the goal filter.
    const DemandGoal& goal = *options.demand_goal;
    MagicProgram magic = MagicTransform(program, goal);
    EvalOptions inner = options;
    inner.demand_goal.reset();
    std::map<std::string, Relation> extents =
        Evaluate(magic.transformed ? magic.program : program, inner, stats);
    if (stats) {
      stats->adorned_rules = magic.adorned_rules;
      stats->magic_rules = magic.magic_rules;
      for (const std::string& pred : magic.magic_preds) {
        auto it = extents.find(pred);
        if (it != extents.end()) stats->magic_facts += it->second.size();
      }
    }
    if (!magic.transformed && !goal.AnyBound()) return extents;
    auto it = extents.find(magic.goal_pred);
    Relation answers = it == extents.end()
                           ? Relation()
                           : FilterByPattern(it->second, goal.pattern);
    extents[goal.pred] = std::move(answers);
    return extents;
  }

  EvalStats scratch;
  EvalStats* s = stats ? stats : &scratch;
  if (program.HasAggregates()) ValidateAggregates(program);
  std::map<std::string, int> stratum = Stratify(program);
  int max_stratum = 0;
  for (const auto& [pred, st] : stratum) {
    (void)pred;
    max_stratum = std::max(max_stratum, st);
  }
  s->strata = max_stratum + 1;
  const bool indexed = options.strategy == Strategy::kSemiNaive;
  const bool semi_naive = options.strategy != Strategy::kNaive;
  int num_threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                             : options.num_threads;
  // The scan ablation strategies are sequential by definition.
  const bool parallel = indexed && num_threads > 1;

  std::map<std::string, Relation> extents = program.facts();
  // Freeze the extent map's structure before anything runs: every head
  // predicate gets its entry now, so concurrent units never mutate the map
  // itself — only the relation each owns exclusively.
  for (const Rule& rule : program.rules()) extents[rule.head.pred];
  State state;
  state.full = &extents;
  IndexCache index_cache;

  std::vector<Unit> units = BuildUnits(program);
  s->units = static_cast<int>(units.size());
  s->threads = parallel ? num_threads : 1;
  std::mutex stats_mu;

  const Rule* rules_base = program.rules().data();
  if (!parallel) {
    for (int u : TopoOrder(units)) {
      EvalUnit(units[u], indexed, semi_naive, options.max_iterations,
               options.plan_order_seed, rules_base, &state, &index_cache,
               /*pool=*/nullptr, s, &stats_mu);
    }
    return extents;
  }

  // Topologically schedule the unit DAG on the pool: a unit launches as
  // soon as its last dependency completes; independent units (and their
  // inner chunk tasks) interleave freely across the workers. The pool is
  // the process-wide shared one for this thread count — spawning (and
  // joining) a fresh pool per Evaluate call was pure overhead on small
  // fixpoints and is the first thing incremental maintenance would feel.
  ThreadPool& pool = ThreadPool::Shared(num_threads);
  ThreadPool::Stats pool_before = pool.stats();
  std::vector<std::atomic<int>> remaining(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    remaining[u].store(units[u].num_deps, std::memory_order_relaxed);
  }
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> launched{0};
  ThreadPool::TaskGroup group(&pool);
  std::function<void(int)> launch = [&](int u) {
    launched.fetch_add(1, std::memory_order_relaxed);
    group.Run([&, u] {
      try {
        if (!failed.load(std::memory_order_acquire)) {
          EvalUnit(units[u], indexed, semi_naive, options.max_iterations,
                   options.plan_order_seed, rules_base, &state, &index_cache,
                   &pool, s, &stats_mu);
        }
      } catch (...) {
        // Successors are never launched; Wait() rethrows this.
        failed.store(true, std::memory_order_release);
        throw;
      }
      for (int v : units[u].succs) {
        if (remaining[v].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          launch(v);
        }
      }
    });
  };
  for (size_t u = 0; u < units.size(); ++u) {
    if (units[u].num_deps == 0) launch(static_cast<int>(u));
  }
  group.Wait();

  // Unit-launch tasks counted here, chunk tasks locally in EvalUnit — the
  // same population a per-call pool used to report. Steals come from the
  // shared pool's cumulative counters, so the delta is approximate when
  // other evaluations overlap on the same pool (par_* counters are
  // documented as scheduling-dependent and excluded from the fuzzer's
  // equality invariants).
  s->par_tasks += launched.load(std::memory_order_relaxed);
  ThreadPool::Stats pool_after = pool.stats();
  s->par_steals += pool_after.TotalSteals() - pool_before.TotalSteals();
  return extents;
}

bool EdbDelta::empty() const {
  for (const auto& [pred, rel] : inserts) {
    (void)pred;
    if (!rel.empty()) return false;
  }
  for (const auto& [pred, rel] : deletes) {
    (void)pred;
    if (!rel.empty()) return false;
  }
  return true;
}

DeltaResult EvaluateDelta(const Program& program,
                          const std::map<std::string, Relation>& base_facts,
                          const EdbDelta& delta,
                          std::map<std::string, Relation>* extents,
                          const EvalOptions& options, EvalStats* stats,
                          IndexCache* cache) {
  DeltaResult result;
  if (options.demand_goal) {
    result.supported = false;
    result.unsupported_reason =
        "demand_goal set: maintain the transformed program instead";
    return result;
  }
  // Aggregate rules cannot be maintained: the per-group accumulators fold
  // monotonically and never retract a contribution, while an EDB delta can
  // delete one — neither the resumed semi-naive pass (it has no bucket
  // state) nor DRed (group rows are folds, not unions of derivations)
  // models that. Refuse before touching anything; the caller's contract is
  // to fall back to a full recompute.
  if (program.HasAggregates()) {
    result.supported = false;
    result.unsupported_reason =
        "aggregate rules cannot be maintained incrementally; recompute";
    return result;
  }

  // Predicates the delta can possibly touch: the changed predicates closed
  // over rule dependencies (positive and negative edges alike).
  std::set<std::string> affected;
  for (const auto& [pred, rel] : delta.inserts) {
    if (!rel.empty()) affected.insert(pred);
  }
  for (const auto& [pred, rel] : delta.deletes) {
    if (!rel.empty()) affected.insert(pred);
  }
  if (affected.empty()) return result;
  for (bool grew = true; grew;) {
    grew = false;
    for (const Rule& rule : program.rules()) {
      if (affected.count(rule.head.pred)) continue;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kPositive &&
            lit.kind != Literal::Kind::kNegative) {
          continue;
        }
        if (affected.count(lit.atom.pred)) {
          affected.insert(rule.head.pred);
          grew = true;
          break;
        }
      }
    }
  }
  // Negation over an affected predicate is non-monotone under the delta —
  // an insert-only update can then both create and destroy derived tuples,
  // which neither the resumed semi-naive pass nor DRed models. Punt to a
  // full recompute (the caller's contract).
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kNegative &&
          affected.count(lit.atom.pred)) {
        result.supported = false;
        result.unsupported_reason =
            "negation over delta-affected predicate '" + lit.atom.pred + "'";
        return result;
      }
    }
  }

  EvalStats scratch;
  EvalStats* s = stats ? stats : &scratch;
  std::map<std::string, int> stratum = Stratify(program);
  int max_stratum = 0;
  for (const auto& [pred, st] : stratum) {
    (void)pred;
    max_stratum = std::max(max_stratum, st);
  }
  s->strata = max_stratum + 1;
  int num_threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                             : options.num_threads;
  ThreadPool* pool =
      num_threads > 1 ? &ThreadPool::Shared(num_threads) : nullptr;
  IndexCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  std::mutex stats_mu;

  // Freeze the extent map's structure up front, same discipline as
  // Evaluate: every rule head and every delta predicate has its entry
  // before anything runs.
  for (const Rule& rule : program.rules()) (*extents)[rule.head.pred];
  for (const auto& [pred, rel] : delta.inserts) {
    (void)rel;
    (*extents)[pred];
  }
  for (const auto& [pred, rel] : delta.deletes) {
    (void)rel;
    (*extents)[pred];
  }

  State state;
  state.full = extents;
  std::vector<Unit> units = BuildUnits(program);
  std::vector<int> order = TopoOrder(units);
  s->units = static_cast<int>(units.size());
  s->threads = pool != nullptr ? num_threads : 1;
  const Rule* rules_base = program.rules().data();

  EvalStats local;  // the sequential delete phases' counters

  // ---- Deletes: DRed. Phase 1, over-delete — everything with a derivation
  // through a deleted tuple, computed semi-naive style against the OLD
  // state (extents are not touched until the over-delete set is complete).
  DeltaMap del;
  for (const auto& [pred, rel] : delta.deletes) {
    const Relation& target = extents->at(pred);
    rel.ForEach([&](const TupleRef& t) {
      if (target.Contains(t)) del[pred].Insert(t);
    });
  }
  bool any_del = false;
  for (const auto& [pred, rel] : del) {
    (void)pred;
    if (!rel.empty()) any_del = true;
  }

  if (any_del) {
    std::map<std::pair<const Rule*, int>, RulePlan> od_plans;
    auto od_plan = [&](const Rule* rule, int li) -> const RulePlan& {
      auto key = std::make_pair(rule, li);
      auto it = od_plans.find(key);
      if (it == od_plans.end()) {
        it = od_plans.emplace(key, BuildPlan(*rule, li, state, 0)).first;
      }
      return it->second;
    };
    DeltaMap frontier = del;
    for (;;) {
      bool any = false;
      for (const auto& [pred, rel] : frontier) {
        (void)pred;
        if (!rel.empty()) {
          any = true;
          break;
        }
      }
      if (!any) break;
      ++local.iterations;
      DeltaMap newly;
      for (const Rule& rule : program.rules()) {
        for (size_t li = 0; li < rule.body.size(); ++li) {
          const Literal& lit = rule.body[li];
          if (lit.kind != Literal::Kind::kPositive) continue;
          const Relation* fr = FindDelta(frontier, lit.atom.pred);
          if (fr == nullptr || fr->empty()) continue;
          Relation cand;
          ExecPlan(rule, od_plan(&rule, static_cast<int>(li)), state, fr,
                   cache, &cand, &local, /*dedup_against=*/nullptr, 0,
                   static_cast<size_t>(-1));
          const Relation& head_ext = extents->at(rule.head.pred);
          Relation& head_del = del[rule.head.pred];
          Relation& head_new = newly[rule.head.pred];
          cand.ForEach([&](const TupleRef& t) {
            if (head_ext.Contains(t) && !head_del.Contains(t)) {
              head_new.Insert(t);
            }
          });
        }
      }
      for (auto& [pred, rel] : newly) del[pred].InsertAll(rel);
      frontier = std::move(newly);
    }

    // Phase 2, removal: erase the whole over-delete set at once.
    for (const auto& [pred, rel] : del) {
      Relation& target = extents->at(pred);
      std::vector<Tuple> doomed;
      doomed.reserve(rel.size());
      rel.ForEach([&](const TupleRef& t) { doomed.push_back(t.ToTuple()); });
      for (const Tuple& t : doomed) target.Erase(t);
    }

    // Phase 3, re-derivation: restore over-deleted tuples with a surviving
    // alternative proof. Units go in topo order so a tuple's supporting
    // predicates are already settled when it is probed; within a unit a
    // worklist loop handles mutual recursion (restoring one tuple can
    // re-support another). Probes pre-bind every head variable, so each
    // check is a point lookup, not a fixpoint. Re-derived tuples need no
    // downstream *insert* propagation: deletion never creates tuples, so
    // anything downstream of a restored tuple was only over-deleted via
    // this tuple and gets restored by its own unit's pass.
    for (int u : order) {
      const Unit& unit = units[u];
      struct PendingDel {
        const std::string* pred;
        Tuple t;
      };
      std::vector<PendingDel> pend;
      for (const std::string& pred : unit.heads) {
        const Relation* d = FindDelta(del, pred);
        if (d == nullptr) continue;
        d->ForEach(
            [&](const TupleRef& t) { pend.push_back({&pred, t.ToTuple()}); });
      }
      if (pend.empty()) continue;

      std::map<const Rule*, RulePlan> rd_plans;
      auto rd_plan = [&](const Rule* rule) -> const RulePlan& {
        auto it = rd_plans.find(rule);
        if (it == rd_plans.end()) {
          std::vector<bool> prebound(static_cast<size_t>(MaxVar(*rule) + 1),
                                     false);
          for (const Term& t : rule->head.terms) {
            if (t.is_var()) prebound[t.var] = true;
          }
          it = rd_plans.emplace(rule, BuildPlan(*rule, -1, state, 0, &prebound))
                   .first;
        }
        return it->second;
      };
      auto is_supported = [&](const std::string& pred, const Tuple& t) {
        auto bf = base_facts.find(pred);
        if (bf != base_facts.end() && bf->second.Contains(t)) return true;
        for (const Rule* rule : unit.rules) {
          if (rule->head.pred != pred) continue;
          if (rule->head.terms.size() != t.arity()) continue;
          const RulePlan& plan = rd_plan(rule);
          Bindings init(static_cast<size_t>(plan.num_vars));
          bool ok = true;
          for (size_t i = 0; i < rule->head.terms.size() && ok; ++i) {
            const Term& ht = rule->head.terms[i];
            if (!ht.is_var()) {
              ok = ht.constant == t[i];
            } else if (init[ht.var]) {
              ok = *init[ht.var] == t[i];
            } else {
              init[ht.var] = t[i];
            }
          }
          if (!ok) continue;
          Relation out;
          ExecPlan(*rule, plan, state, /*delta_rel=*/nullptr, cache, &out,
                   &local, /*dedup_against=*/nullptr, 0,
                   static_cast<size_t>(-1), &init);
          if (!out.empty()) return true;
        }
        return false;
      };

      for (bool changed = true; changed;) {
        changed = false;
        for (auto it = pend.begin(); it != pend.end();) {
          if (is_supported(*it->pred, it->t)) {
            extents->at(*it->pred).Insert(it->t);
            ++local.rederived;
            changed = true;
            it = pend.erase(it);
          } else {
            ++it;
          }
        }
      }
    }

    uint64_t total_del = 0;
    for (const auto& [pred, rel] : del) {
      (void)pred;
      total_del += rel.size();
    }
    local.delta_deletes += total_del - local.rederived;
  }

  // ---- Inserts: resume semi-naive with the inserted tuples as the delta
  // against the (post-delete) fixpoint. `pending` carries the not-yet-
  // propagated new tuples per predicate; each unit seeds from the pending
  // entries its bodies reference and contributes its newly derived tuples
  // back for the units downstream.
  DeltaMap pending;
  for (const auto& [pred, rel] : delta.inserts) {
    Relation& ext = extents->at(pred);
    Relation& pen = pending[pred];
    rel.ForEach([&](const TupleRef& t) {
      if (!ext.Contains(t)) pen.Insert(t);
    });
  }
  for (auto& [pred, rel] : pending) {
    if (rel.empty()) continue;
    extents->at(pred).InsertAll(rel);
    local.delta_inserts += rel.size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu);
    AccumulateCounters(s, local);
  }

  bool any_ins = false;
  for (const auto& [pred, rel] : pending) {
    (void)pred;
    if (!rel.empty()) any_ins = true;
  }
  if (any_ins) {
    for (int u : order) {
      const Unit& unit = units[u];
      DeltaMap seedmap;
      for (const Rule* rule : unit.rules) {
        for (const Literal& lit : rule->body) {
          if (lit.kind != Literal::Kind::kPositive) continue;
          if (seedmap.count(lit.atom.pred)) continue;
          const Relation* p = FindDelta(pending, lit.atom.pred);
          if (p == nullptr || p->empty()) continue;
          seedmap[lit.atom.pred] = *p;
        }
      }
      if (seedmap.empty()) continue;
      DeltaMap collected;
      EvalUnit(unit, /*indexed=*/true, /*semi_naive=*/true,
               options.max_iterations, options.plan_order_seed, rules_base,
               &state, cache, pool, s, &stats_mu, &seedmap, &collected);
      for (auto& [pred, rel] : collected) {
        if (rel.empty()) continue;
        s->delta_inserts += rel.size();
        pending[pred].InsertAll(rel);
      }
    }
  }
  return result;
}

namespace {

/// num_threads for the Strategy-only entry points: REL_EVAL_THREADS when
/// set (1..64; this is how CI runs the whole test suite under TSan with a
/// parallel evaluator), else 1.
int DefaultNumThreads() {
  static const int n = [] {
    const char* env = std::getenv("REL_EVAL_THREADS");
    if (env == nullptr) return 1;
    int v = std::atoi(env);
    return std::min(64, std::max(1, v));
  }();
  return n;
}

}  // namespace

std::map<std::string, Relation> Evaluate(const Program& program,
                                         Strategy strategy, EvalStats* stats) {
  EvalOptions options;
  options.strategy = strategy;
  options.num_threads = DefaultNumThreads();
  return Evaluate(program, options, stats);
}

Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           const EvalOptions& options, EvalStats* stats) {
  std::map<std::string, Relation> all = Evaluate(program, options, stats);
  auto it = all.find(pred);
  return it == all.end() ? Relation() : std::move(it->second);
}

Relation EvaluatePredicate(const Program& program, const std::string& pred,
                           Strategy strategy, EvalStats* stats) {
  std::map<std::string, Relation> all = Evaluate(program, strategy, stats);
  auto it = all.find(pred);
  return it == all.end() ? Relation() : std::move(it->second);
}

}  // namespace datalog
}  // namespace rel
