#include "datalog/index.h"

#include <algorithm>

#include "base/hash.h"

namespace rel {
namespace datalog {

namespace {
constexpr size_t kIndexSeed = 0x51ed;
}  // namespace

void HashIndex::Build(const std::vector<Tuple>* rows,
                      std::vector<size_t> key_positions) {
  rows_ = rows;
  keys_ = std::move(key_positions);
  built_size_ = rows->size();
  entries_.clear();
  entries_.reserve(built_size_);
  for (size_t i = 0; i < built_size_; ++i) {
    entries_.push_back(Entry{RowHash((*rows)[i]), static_cast<uint32_t>(i)});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.hash < b.hash; });
}

size_t HashIndex::KeyHash(const std::vector<Value>& key) const {
  size_t h = kIndexSeed;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

size_t HashIndex::RowHash(const Tuple& row) const {
  size_t h = kIndexSeed;
  for (size_t k : keys_) h = HashCombine(h, row[k].Hash());
  return h;
}

const HashIndex& IndexCache::Get(const std::string& pred, const Relation& rel,
                                 size_t arity,
                                 const std::vector<size_t>& key_positions,
                                 uint64_t* build_counter) {
  HashIndex& index = cache_[Key(pred, arity, key_positions)];
  const std::vector<Tuple>& rows = rel.TuplesOfArity(arity);
  if (!index.built() || index.built_size() != rows.size()) {
    index.Build(&rows, key_positions);
    if (build_counter) ++*build_counter;
  }
  return index;
}

}  // namespace datalog
}  // namespace rel
