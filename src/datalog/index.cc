#include "datalog/index.h"

#include <algorithm>

#include "base/hash.h"

namespace rel {
namespace datalog {

namespace {
constexpr size_t kIndexSeed = 0x51ed;
}  // namespace

void HashIndex::Build(const ColumnArena* arena,
                      std::vector<size_t> key_positions) {
  arena_ = arena;
  built_id_ = arena->id();
  built_version_ = arena->version();
  keys_ = std::move(key_positions);
  built_size_ = arena->size();
  entries_.Build(arena->size(), [this](size_t row) { return RowKeyHash(row); });
}

void HashIndex::Append(const ColumnArena* arena) {
  size_t old_size = built_size_;
  arena_ = arena;  // may be a different object with the same storage id
  built_version_ = arena->version();
  built_size_ = arena->size();
  entries_.Append(old_size, arena->size(),
                  [this](size_t row) { return RowKeyHash(row); });
}

void HashIndex::Clear() {
  arena_ = nullptr;
  built_id_ = 0;
  built_version_ = 0;
  built_size_ = 0;
  entries_.Clear();
}

size_t HashIndex::KeyHash(const std::vector<Value>& key) const {
  size_t h = kIndexSeed;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

size_t HashIndex::RowKeyHash(size_t row) const {
  size_t h = kIndexSeed;
  for (size_t k : keys_) h = HashCombine(h, arena_->At(row, k).Hash());
  return h;
}

const HashIndex& IndexCache::Get(const std::string& pred, const Relation& rel,
                                 size_t arity,
                                 const std::vector<size_t>& key_positions,
                                 uint64_t* build_counter,
                                 uint64_t* append_counter) {
  IndexEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry = &cache_[Key(pred, arity, key_positions)];
  }
  std::lock_guard<std::mutex> latch(entry->latch);
  HashIndex& index = entry->index;
  const ColumnArena* arena = rel.ArenaOfArity(arity);
  if (arena == nullptr) {
    // No rows of this arity: probes are no-ops on an unbuilt index. Reset
    // only an index that was actually built (its arity vanished between
    // evaluations of a shared cache); within one evaluation arenas never
    // disappear, so for a never-built index this path must stay write-free —
    // an unconditional Clear() would race with lock-free probes of the same
    // entry from concurrent tasks (e.g. magic-set programs probing a demand
    // predicate whose extent is still empty in early rounds).
    if (index.built()) index.Clear();
    return index;
  }
  if (!index.built() || index.built_id() != arena->id()) {
    index.Build(arena, key_positions);
    if (build_counter) ++*build_counter;
  } else if (index.built_version() != arena->version()) {
    // Same storage, moved version. The arena bumps its version exactly once
    // per effective insert or erase, so growth where every version tick is
    // accounted for by a new row proves the rows already indexed are
    // untouched — extend instead of rebuilding.
    uint64_t version_delta = arena->version() - index.built_version();
    bool pure_append = arena->size() >= index.built_size() &&
                       version_delta == arena->size() - index.built_size();
    if (pure_append) {
      index.Append(arena);
      if (append_counter) ++*append_counter;
    } else {
      index.Build(arena, key_positions);
      if (build_counter) ++*build_counter;
    }
  }
  return index;
}

const joins::SortedColumns& IndexCache::GetSorted(
    const std::string& pred, const Relation& rel, size_t arity,
    const std::vector<size_t>& col_order, uint64_t* build_counter) {
  SortedEntry* entry_ptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry_ptr = &sorted_cache_[Key(pred, arity, col_order)];
  }
  std::lock_guard<std::mutex> latch(entry_ptr->latch);
  SortedEntry& entry = *entry_ptr;
  const ColumnArena* arena = rel.ArenaOfArity(arity);
  if (arena == nullptr) {
    if (entry.built && entry.data.rows != 0) {
      entry.built = false;
      entry.built_id = 0;
      entry.built_version = 0;
      entry.data = joins::SortedColumns{};
    }
    entry.built = true;
    entry.data.cols.resize(col_order.size());
    return entry.data;
  }
  if (entry.built && entry.built_id == arena->id() &&
      entry.built_version == arena->version()) {
    return entry.data;
  }

  entry.built_id = arena->id();
  entry.built_version = arena->version();
  entry.built = true;
  entry.data = joins::ToSortedColumns(*arena, col_order);
  if (build_counter) ++*build_counter;
  return entry.data;
}

}  // namespace datalog
}  // namespace rel
