#include "datalog/program.h"

#include <cctype>
#include <cstring>

#include "base/error.h"

namespace rel {
namespace datalog {

Literal Literal::Positive(Atom a) {
  Literal l;
  l.kind = Kind::kPositive;
  l.atom = std::move(a);
  return l;
}

Literal Literal::Negative(Atom a) {
  Literal l;
  l.kind = Kind::kNegative;
  l.atom = std::move(a);
  return l;
}

Literal Literal::Range(Term lo, Term hi, Term step, Term x) {
  Literal l;
  l.kind = Kind::kRange;
  l.atom.pred = "range";
  l.atom.terms = {std::move(lo), std::move(hi), std::move(step), std::move(x)};
  return l;
}

Literal Literal::Compare(CmpOp op, Term lhs, Term rhs) {
  Literal l;
  l.kind = Kind::kCompare;
  l.cmp_op = op;
  l.lhs = lhs;
  l.rhs = rhs;
  return l;
}

Literal Literal::NegatedCompare(CmpOp op, Term lhs, Term rhs) {
  Literal l = Compare(op, lhs, rhs);
  l.negated = true;
  return l;
}

Literal Literal::Assign(int target_var, ArithOp op, Term a, Term b) {
  Literal l;
  l.kind = Kind::kAssign;
  l.target = target_var;
  l.arith_op = op;
  l.lhs = a;
  l.rhs = b;
  return l;
}

void Program::AddFact(const std::string& pred, Tuple t) {
  facts_[pred].Insert(std::move(t));
}

void Program::AddFacts(const std::string& pred, const Relation& rel) {
  facts_[pred].InsertAll(rel);
}

void Program::AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

bool Program::HasAggregates() const {
  for (const Rule& rule : rules_) {
    if (rule.agg.has_value()) return true;
  }
  return false;
}

std::vector<std::string> Program::Predicates() const {
  std::map<std::string, bool> seen;
  for (const auto& [pred, rel] : facts_) {
    (void)rel;
    seen[pred] = true;
  }
  for (const Rule& rule : rules_) {
    seen[rule.head.pred] = true;
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kPositive ||
          lit.kind == Literal::Kind::kNegative) {
        seen[lit.atom.pred] = true;
      }
    }
  }
  std::vector<std::string> out;
  for (const auto& [pred, flag] : seen) {
    (void)flag;
    out.push_back(pred);
  }
  return out;
}

namespace {

/// Hand-rolled parser for the classical Datalog syntax.
class DatalogParser {
 public:
  explicit DatalogParser(const std::string& source) : src_(source) {}

  Program Parse() {
    Program program;
    SkipWs();
    while (pos_ < src_.size()) {
      ParseClause(&program);
      SkipWs();
    }
    return program;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) {
    throw RelError(ErrorKind::kParse, "datalog: " + message + " at offset " +
                                          std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || (c == '/' && pos_ + 1 < src_.size() &&
                              src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    if (!Eat(c)) Fail(std::string("expected '") + c + "'");
  }

  bool EatStr(const char* s) {
    SkipWs();
    size_t n = std::strlen(s);
    if (src_.compare(pos_, n, s) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::string ParseIdent() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      ++pos_;
    }
    if (start == pos_) Fail("expected identifier");
    return src_.substr(start, pos_ - start);
  }

  int VarId(const std::string& name) {
    auto [it, inserted] = vars_.try_emplace(name, next_var_);
    if (inserted) ++next_var_;
    return it->second;
  }

  Term ParseTerm() {
    SkipWs();
    char c = src_[pos_];
    if (c == '"') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
      if (pos_ >= src_.size()) Fail("unterminated string");
      std::string s = src_.substr(start, pos_ - start);
      ++pos_;
      return Term::Const(Value::String(s));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      size_t start = pos_;
      if (c == '-') ++pos_;
      bool is_float = false;
      while (pos_ < src_.size()) {
        char d = src_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
          continue;
        }
        // A '.' is part of the number only when a digit follows; otherwise
        // it terminates the clause.
        if (d == '.' && pos_ + 1 < src_.size() &&
            std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
          is_float = true;
          ++pos_;
          continue;
        }
        break;
      }
      std::string text = src_.substr(start, pos_ - start);
      if (is_float) return Term::Const(Value::Float(std::stod(text)));
      return Term::Const(Value::Int(std::stoll(text)));
    }
    std::string name = ParseIdent();
    if (name == "_") {
      // Anonymous variable: each occurrence is fresh.
      return Term::Var(next_var_++);
    }
    if (std::isupper(static_cast<unsigned char>(name[0]))) {
      return Term::Var(VarId(name));
    }
    // Lowercase bare identifiers are symbolic constants.
    return Term::Const(Value::String(name));
  }

  Atom ParseAtom() {
    Atom atom;
    atom.pred = ParseIdent();
    Expect('(');
    if (!Eat(')')) {
      atom.terms.push_back(ParseTerm());
      while (Eat(',')) atom.terms.push_back(ParseTerm());
      Expect(')');
    }
    return atom;
  }

  /// True when the input at the current position (after whitespace) reads
  /// `min(`, `max(`, `sum(` or `count(` — the aggregate head form. Does not
  /// consume anything.
  std::optional<AggOp> PeekAggOp() {
    SkipWs();
    static const std::pair<const char*, AggOp> kOps[] = {
        {"min", AggOp::kMin},
        {"max", AggOp::kMax},
        {"sum", AggOp::kSum},
        {"count", AggOp::kCount},
    };
    for (const auto& [name, op] : kOps) {
      size_t n = std::strlen(name);
      if (src_.compare(pos_, n, name) != 0) continue;
      size_t after = pos_ + n;
      // The keyword must end here (so a variable/constant named `summary`
      // is untouched) and be applied to an argument list.
      if (after < src_.size() &&
          (std::isalnum(static_cast<unsigned char>(src_[after])) ||
           src_[after] == '_')) {
        continue;
      }
      while (after < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[after]))) {
        ++after;
      }
      if (after < src_.size() && src_[after] == '(') return op;
    }
    return std::nullopt;
  }

  /// `op(value)` | `op(value; witness...)` | `count(witness...)`, already
  /// knowing `op` via PeekAggOp.
  Aggregate ParseAggregate(AggOp op) {
    Aggregate agg;
    agg.op = op;
    ParseIdent();  // the operator keyword
    Expect('(');
    if (op == AggOp::kCount) {
      // count(w...) = sum of ones over distinct witness rows.
      agg.value = Term::Const(Value::Int(1));
      agg.witness.push_back(ParseTerm());
      while (Eat(',')) agg.witness.push_back(ParseTerm());
    } else {
      agg.value = ParseTerm();
      if (Eat(';')) {
        agg.witness.push_back(ParseTerm());
        while (Eat(',')) agg.witness.push_back(ParseTerm());
      }
    }
    Expect(')');
    return agg;
  }

  /// A rule head: an atom whose LAST argument may be an aggregate form.
  Atom ParseHead(std::optional<Aggregate>* agg) {
    Atom atom;
    atom.pred = ParseIdent();
    Expect('(');
    if (Eat(')')) return atom;
    for (;;) {
      if (std::optional<AggOp> op = PeekAggOp()) {
        *agg = ParseAggregate(*op);
        Expect(')');
        return atom;
      }
      atom.terms.push_back(ParseTerm());
      if (!Eat(',')) break;
    }
    Expect(')');
    return atom;
  }

  std::optional<CmpOp> TryCmpOp() {
    if (EatStr("!=")) return CmpOp::kNeq;
    if (EatStr("<=")) return CmpOp::kLe;
    if (EatStr(">=")) return CmpOp::kGe;
    if (EatStr("<")) return CmpOp::kLt;
    if (EatStr(">")) return CmpOp::kGt;
    if (EatStr("=")) return CmpOp::kEq;
    return std::nullopt;
  }

  std::optional<ArithOp> TryArithOp() {
    if (EatStr("+")) return ArithOp::kAdd;
    if (EatStr("-")) return ArithOp::kSub;
    if (EatStr("*")) return ArithOp::kMul;
    if (EatStr("/")) return ArithOp::kDiv;
    if (EatStr("%")) return ArithOp::kMod;
    return std::nullopt;
  }

  Literal ParseLiteral() {
    SkipWs();
    if (Eat('!')) {
      Atom atom = ParseAtom();
      if (atom.pred == "range") Fail("range cannot be negated");
      return Literal::Negative(std::move(atom));
    }
    // Lookahead: `ident(` is an atom; otherwise a comparison/assignment.
    size_t save = pos_;
    std::map<std::string, int> vars_save = vars_;
    if (std::isalpha(static_cast<unsigned char>(src_[pos_])) ||
        src_[pos_] == '_') {
      std::string ident = ParseIdent();
      SkipWs();
      if (pos_ < src_.size() && src_[pos_] == '(') {
        pos_ = save;
        vars_ = vars_save;
        Atom atom = ParseAtom();
        if (atom.pred == "range") {
          if (atom.terms.size() != 4) Fail("range takes (lo, hi, step, x)");
          return Literal::Range(atom.terms[0], atom.terms[1], atom.terms[2],
                                atom.terms[3]);
        }
        return Literal::Positive(std::move(atom));
      }
      pos_ = save;
      vars_ = vars_save;
    }
    Term lhs = ParseTerm();
    std::optional<CmpOp> cmp = TryCmpOp();
    if (!cmp) Fail("expected comparison operator");
    Term a = ParseTerm();
    // V = A + B is an assignment when followed by an arithmetic operator.
    if (*cmp == CmpOp::kEq && lhs.is_var()) {
      if (std::optional<ArithOp> arith = TryArithOp()) {
        Term b = ParseTerm();
        return Literal::Assign(lhs.var, *arith, a, b);
      }
    }
    return Literal::Compare(*cmp, lhs, a);
  }

  void ParseClause(Program* program) {
    vars_.clear();
    next_var_ = 0;
    std::optional<Aggregate> agg;
    Atom head = ParseHead(&agg);
    SkipWs();
    if (Eat('.')) {
      if (agg) Fail("facts cannot carry an aggregate head");
      // A fact.
      Tuple t;
      for (const Term& term : head.terms) {
        if (term.is_var()) Fail("facts must be ground");
        t.Append(term.constant);
      }
      program->AddFact(head.pred, std::move(t));
      return;
    }
    if (!EatStr(":-")) Fail("expected '.' or ':-'");
    Rule rule;
    rule.head = std::move(head);
    rule.agg = std::move(agg);
    rule.body.push_back(ParseLiteral());
    while (Eat(',')) rule.body.push_back(ParseLiteral());
    Expect('.');
    program->AddRule(std::move(rule));
  }

  const std::string& src_;
  size_t pos_ = 0;
  std::map<std::string, int> vars_;
  int next_var_ = 0;
};

}  // namespace

Program ParseDatalog(const std::string& source) {
  return DatalogParser(source).Parse();
}

}  // namespace datalog
}  // namespace rel
