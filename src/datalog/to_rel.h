// Translating classical Datalog into Rel source (Section 7 lists
// "translations between Rel and other languages" as a research direction;
// the Datalog fragment is the easy, total case and doubles as a
// differential-testing bridge between the two engines in this repository).

#ifndef REL_DATALOG_TO_REL_H_
#define REL_DATALOG_TO_REL_H_

#include <string>

#include "datalog/program.h"

namespace rel {
namespace datalog {

/// Renders one rule as a Rel `def`. Body-only variables are existentially
/// quantified (Rel has no implicit quantification: unscoped identifiers
/// denote relations).
std::string RuleToRel(const Rule& rule);

/// Renders a whole program: facts become relation-constant definitions
/// (`def pred {(...) ; ...}`), rules become `def`s. The result evaluates on
/// the Rel engine to the same extents as this engine computes.
std::string ProgramToRel(const Program& program);

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_TO_REL_H_
