#include "datalog/to_rel.h"

#include <map>
#include <set>

#include "base/error.h"

namespace rel {
namespace datalog {

namespace {

std::string VarName(int id) { return "v" + std::to_string(id); }

std::string TermToRel(const Term& term) {
  if (term.is_var()) return VarName(term.var);
  return term.constant.ToString();  // Rel literal syntax
}

std::string AtomToRel(const Atom& atom) {
  std::string out = atom.pred + "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i) out += ", ";
    out += TermToRel(atom.terms[i]);
  }
  out += ")";
  return out;
}

const char* CmpToRel(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNeq: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "=";
}

const char* ArithToRel(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
    case ArithOp::kMin:
    case ArithOp::kMax:
      break;
  }
  return nullptr;
}

std::string LiteralToRel(const Literal& lit) {
  switch (lit.kind) {
    case Literal::Kind::kPositive:
      return AtomToRel(lit.atom);
    case Literal::Kind::kNegative:
      return "not " + AtomToRel(lit.atom);
    case Literal::Kind::kCompare:
      return TermToRel(lit.lhs) + " " + CmpToRel(lit.cmp_op) + " " +
             TermToRel(lit.rhs);
    case Literal::Kind::kAssign: {
      const char* op = ArithToRel(lit.arith_op);
      if (op) {
        return VarName(lit.target) + " = " + TermToRel(lit.lhs) + " " + op +
               " " + TermToRel(lit.rhs);
      }
      const char* fn =
          lit.arith_op == ArithOp::kMin ? "minimum" : "maximum";
      return VarName(lit.target) + " = " + std::string(fn) + "[" +
             TermToRel(lit.lhs) + ", " + TermToRel(lit.rhs) + "]";
    }
  }
  return "";
}

void CollectVars(const Term& t, std::set<int>* vars) {
  if (t.is_var()) vars->insert(t.var);
}

}  // namespace

std::string RuleToRel(const Rule& rule) {
  std::set<int> head_vars;
  for (const Term& t : rule.head.terms) CollectVars(t, &head_vars);
  std::set<int> body_vars;
  for (const Literal& lit : rule.body) {
    for (const Term& t : lit.atom.terms) CollectVars(t, &body_vars);
    CollectVars(lit.lhs, &body_vars);
    CollectVars(lit.rhs, &body_vars);
    if (lit.target >= 0) body_vars.insert(lit.target);
  }
  std::set<int> existential;
  for (int v : body_vars) {
    if (!head_vars.count(v)) existential.insert(v);
  }

  std::string head = rule.head.pred + "(";
  for (size_t i = 0; i < rule.head.terms.size(); ++i) {
    if (i) head += ", ";
    head += TermToRel(rule.head.terms[i]);
  }
  head += ")";

  std::string body;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i) body += " and ";
    body += LiteralToRel(rule.body[i]);
  }
  if (body.empty()) body = "true";

  if (!existential.empty()) {
    std::string binders;
    for (int v : existential) {
      if (!binders.empty()) binders += ", ";
      binders += VarName(v);
    }
    body = "exists((" + binders + ") | " + body + ")";
  }
  return "def " + head + " : " + body;
}

std::string ProgramToRel(const Program& program) {
  std::string out;
  for (const auto& [pred, facts] : program.facts()) {
    out += "def " + pred + " {";
    bool first = true;
    for (const Tuple& t : facts.SortedTuples()) {
      if (!first) out += " ; ";
      first = false;
      out += t.ToString();
    }
    out += "}\n";
  }
  for (const Rule& rule : program.rules()) {
    out += RuleToRel(rule) + "\n";
  }
  return out;
}

}  // namespace datalog
}  // namespace rel
