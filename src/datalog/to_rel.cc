#include "datalog/to_rel.h"

#include <map>
#include <set>

#include "base/error.h"

namespace rel {
namespace datalog {

namespace {

/// Renders a Value as a parseable Rel literal. Unlike Value::ToString,
/// string contents are escaped with the lexer's escape set (\n \t \\ \"),
/// and `rel` entities render as :Name relation-name literals when the id is
/// identifier-shaped.
std::string ValueToRel(const Value& v) {
  if (v.is_string()) {
    std::string out = "\"";
    for (char c : v.AsString()) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out.push_back(c);
      }
    }
    out += "\"";
    return out;
  }
  if (v.is_entity() && v.EntityConcept() == "rel") {
    const std::string& id = v.EntityId();
    bool ident = !id.empty() && !(id[0] >= '0' && id[0] <= '9');
    for (char c : id) {
      ident &= (c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9'));
    }
    if (ident) return ":" + id;
  }
  return v.ToString();  // ints, floats: already Rel literal syntax
}

std::string TermToRel(const Term& term, const std::string& var_prefix) {
  if (term.is_var()) return var_prefix + std::to_string(term.var);
  return ValueToRel(term.constant);
}

const char* CmpToRel(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNeq: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "=";
}

const char* ArithToRel(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
    case ArithOp::kMin:
    case ArithOp::kMax:
      break;
  }
  return nullptr;
}

std::string AtomToRel(const Atom& atom, const std::string& var_prefix) {
  std::string out = atom.pred + "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i) out += ", ";
    out += TermToRel(atom.terms[i], var_prefix);
  }
  out += ")";
  return out;
}

std::string LiteralToRel(const Literal& lit, const std::string& var_prefix) {
  switch (lit.kind) {
    case Literal::Kind::kPositive:
      return AtomToRel(lit.atom, var_prefix);
    case Literal::Kind::kNegative:
      return "not " + AtomToRel(lit.atom, var_prefix);
    case Literal::Kind::kCompare: {
      std::string cmp = TermToRel(lit.lhs, var_prefix) + " " +
                        CmpToRel(lit.cmp_op) + " " +
                        TermToRel(lit.rhs, var_prefix);
      // A negated comparison complements the whole outcome (kUnordered
      // included), which is exactly Rel's `not (a < b)` — NOT `a >= b`.
      return lit.negated ? "not (" + cmp + ")" : cmp;
    }
    case Literal::Kind::kRange:
      // The Rel `range` builtin has the same generator semantics as the
      // Datalog kRange literal (see program.h), so this is a direct call.
      return "range(" + TermToRel(lit.atom.terms[0], var_prefix) + ", " +
             TermToRel(lit.atom.terms[1], var_prefix) + ", " +
             TermToRel(lit.atom.terms[2], var_prefix) + ", " +
             TermToRel(lit.atom.terms[3], var_prefix) + ")";
    case Literal::Kind::kAssign: {
      const char* op = ArithToRel(lit.arith_op);
      if (op) {
        return var_prefix + std::to_string(lit.target) + " = " +
               TermToRel(lit.lhs, var_prefix) + " " + op + " " +
               TermToRel(lit.rhs, var_prefix);
      }
      const char* fn = lit.arith_op == ArithOp::kMin ? "minimum" : "maximum";
      return var_prefix + std::to_string(lit.target) + " = " +
             std::string(fn) + "[" + TermToRel(lit.lhs, var_prefix) + ", " +
             TermToRel(lit.rhs, var_prefix) + "]";
    }
  }
  return "";
}

void CollectVars(const Term& t, std::set<int>* vars) {
  if (t.is_var()) vars->insert(t.var);
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// A variable prefix that cannot capture a relation name referenced by the
/// rule: in Rel an unscoped identifier denotes a relation, so a predicate
/// named `v2` would silently shadow the variable rendering.
std::string VarPrefixFor(const Rule& rule) {
  std::set<std::string> preds = {rule.head.pred};
  for (const Literal& lit : rule.body) {
    if (lit.kind == Literal::Kind::kPositive ||
        lit.kind == Literal::Kind::kNegative) {
      preds.insert(lit.atom.pred);
    }
  }
  std::string prefix = "v";
  for (;;) {
    bool collides = false;
    for (const std::string& pred : preds) {
      if (pred.size() > prefix.size() && pred.compare(0, prefix.size(), prefix) == 0 &&
          AllDigits(pred.substr(prefix.size()))) {
        collides = true;
        break;
      }
    }
    if (!collides) return prefix;
    prefix += "v";
  }
}

}  // namespace

std::string RuleToRel(const Rule& rule) {
  const std::string prefix = VarPrefixFor(rule);

  std::set<int> body_vars;
  int max_var = -1;
  for (const Literal& lit : rule.body) {
    for (const Term& t : lit.atom.terms) CollectVars(t, &body_vars);
    CollectVars(lit.lhs, &body_vars);
    CollectVars(lit.rhs, &body_vars);
    if (lit.target >= 0) body_vars.insert(lit.target);
  }
  if (rule.agg.has_value()) {
    for (const Term& t : rule.agg->witness) CollectVars(t, &body_vars);
    CollectVars(rule.agg->value, &body_vars);
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_var()) max_var = std::max(max_var, t.var);
  }
  if (!body_vars.empty()) max_var = std::max(max_var, *body_vars.rbegin());

  // Head rendering. A repeated head variable cannot repeat as a Rel binder
  // (the second binding would shadow the first, leaving it unbound), so
  // later occurrences become fresh aliases equated to the original in the
  // body: p(X, X) :- q(X)  =>  def p(v0, v1) : q(v0) and v1 = v0.
  std::set<int> head_vars;
  std::vector<std::pair<int, int>> aliases;  // (alias, original)
  std::string head_args;
  for (size_t i = 0; i < rule.head.terms.size(); ++i) {
    if (i) head_args += ", ";
    const Term& t = rule.head.terms[i];
    if (t.is_var() && !head_vars.insert(t.var).second) {
      int alias = ++max_var;
      head_vars.insert(alias);
      aliases.emplace_back(alias, t.var);
      head_args += prefix + std::to_string(alias);
      continue;
    }
    head_args += TermToRel(t, prefix);
  }

  std::string body;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i) body += " and ";
    body += LiteralToRel(rule.body[i], prefix);
  }
  for (const auto& [alias, original] : aliases) {
    if (!body.empty()) body += " and ";
    body += prefix + std::to_string(alias) + " = " + prefix +
            std::to_string(original);
  }
  if (body.empty()) body = "true";

  if (!rule.agg.has_value()) {
    std::set<int> existential;
    for (int v : body_vars) {
      if (!head_vars.count(v)) existential.insert(v);
    }
    if (!existential.empty()) {
      std::string binders;
      for (int v : existential) {
        if (!binders.empty()) binders += ", ";
        binders += prefix + std::to_string(v);
      }
      body = "exists((" + binders + ") | " + body + ")";
    }
    return "def " + rule.head.pred + "(" + head_args + ") : " + body;
  }

  // Aggregate rule: the extent row is (group..., result), so the Rel def
  // takes the group columns plus a fresh result parameter bound by an
  // aggregate application over the contribution abstraction:
  //   spath(X, Y, min(D; Z)) :- ...  =>
  //   def spath(v0, v1, v4) : v4 = min[(v3, v2) : ...]
  // Rel's aggregates fold the last column of the deduplicated abstraction
  // extent, which matches the Datalog bucket semantics (program.h).
  const Aggregate& agg = *rule.agg;
  std::vector<Term> binder_terms = agg.witness;
  if (agg.op != AggOp::kCount) binder_terms.push_back(agg.value);
  if (binder_terms.empty()) {
    // A witness-free count contributes the single row (1); counting the
    // distinct values of a binder pinned to 1 is the same aggregate.
    binder_terms.push_back(Term::Const(Value::Int(1)));
  }
  std::set<int> binder_vars;
  std::string binders;
  for (const Term& t : binder_terms) {
    if (!binders.empty()) binders += ", ";
    // A binder must be a variable fresh in the abstraction: constants,
    // group columns, and repeated binders get a fresh alias equated to the
    // original inside the body.
    if (t.is_var() && !head_vars.count(t.var) &&
        binder_vars.insert(t.var).second) {
      binders += prefix + std::to_string(t.var);
      continue;
    }
    int alias = ++max_var;
    binder_vars.insert(alias);
    binders += prefix + std::to_string(alias);
    body += " and " + prefix + std::to_string(alias) + " = " +
            TermToRel(t, prefix);
  }

  std::set<int> existential;
  for (int v : body_vars) {
    if (!head_vars.count(v) && !binder_vars.count(v)) existential.insert(v);
  }
  if (!existential.empty()) {
    std::string ebinders;
    for (int v : existential) {
      if (!ebinders.empty()) ebinders += ", ";
      ebinders += prefix + std::to_string(v);
    }
    body = "exists((" + ebinders + ") | " + body + ")";
  }

  const char* op_name = agg.op == AggOp::kMin   ? "min"
                        : agg.op == AggOp::kMax ? "max"
                        : agg.op == AggOp::kSum ? "sum"
                                                : "count";
  int result_var = ++max_var;
  const std::string rv = prefix + std::to_string(result_var);
  if (!head_args.empty()) head_args += ", ";
  head_args += rv;
  return "def " + rule.head.pred + "(" + head_args + ") : " + rv + " = " +
         op_name + "[(" + binders + ") : " + body + "]";
}

std::string ProgramToRel(const Program& program) {
  // Multiple aggregate rules for one predicate fold a SINGLE merged bucket
  // per group in the classical engine, but each rendered Rel def would fold
  // its own abstraction separately (the union of per-rule folds — a
  // different, wrong answer whenever two rules feed the same group).
  // Refuse rather than translate unfaithfully.
  std::map<std::string, int> agg_rule_count;
  for (const Rule& rule : program.rules()) {
    if (rule.agg.has_value() && ++agg_rule_count[rule.head.pred] > 1) {
      throw RelError(ErrorKind::kType,
                     "cannot translate '" + rule.head.pred +
                         "' to Rel: multiple aggregate rules fold one merged "
                         "bucket per group, which per-rule defs cannot "
                         "express");
    }
  }
  std::string out;
  for (const auto& [pred, facts] : program.facts()) {
    out += "def " + pred + " {";
    bool first = true;
    for (const Tuple& t : facts.SortedTuples()) {
      if (!first) out += " ; ";
      first = false;
      out += "(";
      for (size_t i = 0; i < t.arity(); ++i) {
        if (i) out += ", ";
        out += ValueToRel(t[i]);
      }
      out += ")";
    }
    out += "}\n";
  }
  for (const Rule& rule : program.rules()) {
    out += RuleToRel(rule) + "\n";
  }
  return out;
}

}  // namespace datalog
}  // namespace rel
