// A classical fixed-arity Datalog engine: the baseline the paper's language
// generalizes (Section 3.1 "Datalog as a starting point", and the lineage of
// Soufflé / LogicBlox cited in Section 7).
//
// Compared to the Rel engine in src/core, this engine is deliberately
// conventional: positional predicates with fixed arity, stratified negation,
// set-at-a-time semi-naive evaluation with hash-join indexes. It exists (a)
// as the performance baseline for the benchmarks and (b) as a reference
// implementation for differential testing of the Rel engine's recursion.

#ifndef REL_DATALOG_PROGRAM_H_
#define REL_DATALOG_PROGRAM_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "data/value.h"

#include "data/relation.h"

namespace rel {
namespace datalog {

/// A term: a variable (non-negative id, scoped to one rule) or a constant.
struct Term {
  static Term Var(int id) {
    Term t;
    t.var = id;
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.constant = v;
    return t;
  }
  bool is_var() const { return var >= 0; }

  int var = -1;
  Value constant;
};

/// A predicate applied to terms.
struct Atom {
  std::string pred;
  std::vector<Term> terms;
};

/// Comparison operators for filter literals.
enum class CmpOp { kEq, kNeq, kLt, kLe, kGt, kGe };

/// Arithmetic for assignment literals: target := f(a, b).
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod, kMin, kMax };

/// One body literal.
struct Literal {
  enum class Kind { kPositive, kNegative, kCompare, kAssign };

  static Literal Positive(Atom a);
  static Literal Negative(Atom a);
  static Literal Compare(CmpOp op, Term lhs, Term rhs);
  /// The complement of Compare(op, lhs, rhs): holds exactly when that
  /// comparison does NOT. This is not expressible by flipping `op` —
  /// NumericCompare can return kUnordered (mixed types, NaN), where every
  /// plain comparison is false and every negated one is therefore true.
  /// E.g. NegatedCompare(kLt, "a", 1) holds while Compare(kGe, "a", 1)
  /// does not. The Rel lowering uses this to translate `not (a < b)`
  /// faithfully (see core/lowering.cc).
  static Literal NegatedCompare(CmpOp op, Term lhs, Term rhs);
  /// target must be a fresh variable; a and b must be bound earlier.
  static Literal Assign(int target_var, ArithOp op, Term a, Term b);

  Kind kind = Kind::kPositive;
  Atom atom;             // kPositive / kNegative
  CmpOp cmp_op = CmpOp::kEq;
  bool negated = false;  // kCompare: complement the comparison's outcome
  Term lhs, rhs;         // kCompare
  int target = -1;       // kAssign
  ArithOp arith_op = ArithOp::kAdd;
};

/// head :- body. Range restriction (every head/negated/compared variable
/// bound by a positive literal or assignment) is validated by the evaluator.
struct Rule {
  Atom head;
  std::vector<Literal> body;
};

/// A query goal for demand-driven evaluation: answer the atoms of `pred`
/// whose bound positions carry the given constants (e.g. tc(0, Y) is
/// {pred: "tc", pattern: {0, nullopt}}). The pattern's length fixes the
/// goal arity. Consumed by EvalOptions::demand_goal (datalog/eval.h), which
/// routes evaluation through the magic-set transform (datalog/magic.h).
struct DemandGoal {
  std::string pred;
  std::vector<std::optional<Value>> pattern;

  /// True iff at least one position is bound. An all-free goal demands the
  /// whole extent, so the transform is the identity.
  bool AnyBound() const {
    for (const auto& p : pattern) {
      if (p.has_value()) return true;
    }
    return false;
  }
};

/// A Datalog program: facts (EDB) plus rules (IDB).
class Program {
 public:
  void AddFact(const std::string& pred, Tuple t);
  /// Bulk EDB load: merges a whole relation into `pred`'s facts without
  /// materializing per-tuple copies (columnar InsertAll). This is how the
  /// Rel engine's lowering pass (src/core/lowering.h) feeds base relations
  /// and materialized external extents into a program.
  void AddFacts(const std::string& pred, const Relation& rel);
  void AddRule(Rule rule);

  const std::map<std::string, Relation>& facts() const { return facts_; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// All predicate names (EDB and IDB).
  std::vector<std::string> Predicates() const;

 private:
  std::map<std::string, Relation> facts_;
  std::vector<Rule> rules_;
};

/// A tiny parser for classical Datalog text, used by tests and benches:
///   tc(X, Y) :- edge(X, Y).
///   tc(X, Z) :- edge(X, Y), tc(Y, Z).
///   path(X, Y, D1) :- edge(X, Y), D1 = 1.
/// Uppercase identifiers are variables; integers and "strings" constants;
/// `!pred(...)` is negation; comparisons use =, !=, <, <=, >, >=;
/// assignment uses V = A + B (or -, *, /, %).
Program ParseDatalog(const std::string& source);

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_PROGRAM_H_
