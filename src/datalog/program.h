// A classical fixed-arity Datalog engine: the baseline the paper's language
// generalizes (Section 3.1 "Datalog as a starting point", and the lineage of
// Soufflé / LogicBlox cited in Section 7).
//
// Compared to the Rel engine in src/core, this engine is deliberately
// conventional: positional predicates with fixed arity, stratified negation,
// set-at-a-time semi-naive evaluation with hash-join indexes. It exists (a)
// as the performance baseline for the benchmarks and (b) as a reference
// implementation for differential testing of the Rel engine's recursion.

#ifndef REL_DATALOG_PROGRAM_H_
#define REL_DATALOG_PROGRAM_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "data/value.h"

#include "data/relation.h"

namespace rel {
namespace datalog {

/// A term: a variable (non-negative id, scoped to one rule) or a constant.
struct Term {
  static Term Var(int id) {
    Term t;
    t.var = id;
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.constant = v;
    return t;
  }
  bool is_var() const { return var >= 0; }

  int var = -1;
  Value constant;
};

/// A predicate applied to terms.
struct Atom {
  std::string pred;
  std::vector<Term> terms;
};

/// Comparison operators for filter literals.
enum class CmpOp { kEq, kNeq, kLt, kLe, kGt, kGe };

/// Arithmetic for assignment literals: target := f(a, b).
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod, kMin, kMax };

/// One body literal.
struct Literal {
  enum class Kind { kPositive, kNegative, kCompare, kAssign, kRange };

  static Literal Positive(Atom a);
  static Literal Negative(Atom a);
  /// Generator literal mirroring the Rel `range` builtin (core/builtins.cc):
  /// x = lo, lo+step, ..., <= hi (inclusive) for bound integer bounds with
  /// step > 0; when x is already bound it is a membership test. Non-integer
  /// bounds or step <= 0 produce no rows — same as the builtin, no error.
  /// lo/hi/step must be bound before the literal evaluates (kSafety
  /// otherwise); the four terms live in atom.terms, atom.pred is "range".
  /// This is what the Rel lowering emits for `range(lo, hi, step, x)`
  /// applications, and what ParseDatalog builds for a positive `range/4`
  /// atom ("range" is reserved).
  static Literal Range(Term lo, Term hi, Term step, Term x);
  static Literal Compare(CmpOp op, Term lhs, Term rhs);
  /// The complement of Compare(op, lhs, rhs): holds exactly when that
  /// comparison does NOT. This is not expressible by flipping `op` —
  /// NumericCompare can return kUnordered (mixed types, NaN), where every
  /// plain comparison is false and every negated one is therefore true.
  /// E.g. NegatedCompare(kLt, "a", 1) holds while Compare(kGe, "a", 1)
  /// does not. The Rel lowering uses this to translate `not (a < b)`
  /// faithfully (see core/lowering.cc).
  static Literal NegatedCompare(CmpOp op, Term lhs, Term rhs);
  /// target must be a fresh variable; a and b must be bound earlier.
  static Literal Assign(int target_var, ArithOp op, Term a, Term b);

  Kind kind = Kind::kPositive;
  Atom atom;             // kPositive / kNegative
  CmpOp cmp_op = CmpOp::kEq;
  bool negated = false;  // kCompare: complement the comparison's outcome
  Term lhs, rhs;         // kCompare
  int target = -1;       // kAssign
  ArithOp arith_op = ArithOp::kAdd;
};

/// Aggregate operators for aggregate rule heads.
enum class AggOp { kMin, kMax, kSum, kCount };

/// The aggregate part of an aggregate rule head. The rule's visible extent
/// has arity head.terms.size() + 1: one row (group..., result) per group of
/// bindings of the head terms, where result folds the group's contribution
/// bucket. Each body match contributes the row (witness..., value) to its
/// group's bucket; buckets are sets (Relation-deduplicated), mirroring Rel's
/// set semantics, and the fold runs over the bucket's sorted tuples exactly
/// like the Rel interpreter's `reduce` (so sum never double-counts a
/// deduplicated row, and min/max ties keep the first sorted operand).
struct Aggregate {
  AggOp op = AggOp::kMin;
  /// The aggregated value (ignored for kCount, whose contributions are
  /// (witness..., 1) — count = sum of ones = distinct witness rows).
  Term value;
  /// Extra columns distinguishing contributions within a group (the
  /// abstraction binders of the Rel form, minus the group columns).
  std::vector<Term> witness;
};

/// head :- body. Range restriction (every head/negated/compared variable
/// bound by a positive literal or assignment) is validated by the evaluator.
/// When `agg` is set, head.terms are the GROUP columns only and the extent
/// carries one extra result column (see Aggregate).
struct Rule {
  Atom head;
  std::vector<Literal> body;
  std::optional<Aggregate> agg;
};

/// A query goal for demand-driven evaluation: answer the atoms of `pred`
/// whose bound positions carry the given constants (e.g. tc(0, Y) is
/// {pred: "tc", pattern: {0, nullopt}}). The pattern's length fixes the
/// goal arity. Consumed by EvalOptions::demand_goal (datalog/eval.h), which
/// routes evaluation through the magic-set transform (datalog/magic.h).
struct DemandGoal {
  std::string pred;
  std::vector<std::optional<Value>> pattern;

  /// True iff at least one position is bound. An all-free goal demands the
  /// whole extent, so the transform is the identity.
  bool AnyBound() const {
    for (const auto& p : pattern) {
      if (p.has_value()) return true;
    }
    return false;
  }
};

/// A Datalog program: facts (EDB) plus rules (IDB).
class Program {
 public:
  void AddFact(const std::string& pred, Tuple t);
  /// Bulk EDB load: merges a whole relation into `pred`'s facts without
  /// materializing per-tuple copies (columnar InsertAll). This is how the
  /// Rel engine's lowering pass (src/core/lowering.h) feeds base relations
  /// and materialized external extents into a program.
  void AddFacts(const std::string& pred, const Relation& rel);
  void AddRule(Rule rule);

  const std::map<std::string, Relation>& facts() const { return facts_; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// All predicate names (EDB and IDB).
  std::vector<std::string> Predicates() const;

  /// True iff some rule carries an aggregate head. Gates the paths that do
  /// not support aggregation (magic-set demand, incremental maintenance).
  bool HasAggregates() const;

 private:
  std::map<std::string, Relation> facts_;
  std::vector<Rule> rules_;
};

/// A tiny parser for classical Datalog text, used by tests and benches:
///   tc(X, Y) :- edge(X, Y).
///   tc(X, Z) :- edge(X, Y), tc(Y, Z).
///   path(X, Y, D1) :- edge(X, Y), D1 = 1.
/// Uppercase identifiers are variables; integers and "strings" constants;
/// `!pred(...)` is negation; comparisons use =, !=, <, <=, >, >=;
/// assignment uses V = A + B (or -, *, /, %).
///
/// Aggregate rules put the aggregate as the LAST head argument:
///   spath(X, Y, min(D; Z)) :- edge(X, Y), D = 1 + 0, ...
///   total(K, sum(V))       :- item(K, V).
///   deg(X, count(Y))       :- edge(X, Y).
/// `op(value)` or `op(value; witness...)` for min/max/sum; `count(w...)`
/// counts distinct witness rows. The preceding head arguments are the group
/// columns (see Aggregate).
Program ParseDatalog(const std::string& source);

}  // namespace datalog
}  // namespace rel

#endif  // REL_DATALOG_PROGRAM_H_
