#include "joins/leapfrog.h"

#include <algorithm>

#include "base/error.h"

namespace rel {
namespace joins {

namespace {

/// A trie view over a sorted tuple vector. At depth d the iterator walks the
/// distinct values of column d within the row range selected by the values
/// chosen at depths 0..d-1.
class TrieIterator {
 public:
  explicit TrieIterator(const std::vector<Tuple>& rows) : rows_(rows) {}

  /// Descends into the children of the current position (or the root).
  void Open() {
    size_t begin = 0;
    size_t end = rows_.size();
    if (!levels_.empty()) {
      begin = levels_.back().cur_begin;
      end = levels_.back().cur_end;
    }
    levels_.push_back(Level{begin, end, begin, begin});
    if (begin < end) SetRunAt(begin);
  }

  void Up() { levels_.pop_back(); }

  bool AtEnd() const {
    const Level& l = levels_.back();
    return l.cur_begin >= l.end;
  }

  const Value& Key() const {
    return rows_[levels_.back().cur_begin][Depth()];
  }

  /// Advances to the next distinct value at this depth.
  void Next() {
    Level& l = levels_.back();
    l.cur_begin = l.cur_end;
    if (l.cur_begin < l.end) SetRunAt(l.cur_begin);
  }

  /// Positions at the first value >= `v` at this depth.
  void SeekGE(const Value& v) {
    Level& l = levels_.back();
    size_t d = Depth();
    size_t lo = l.cur_begin;
    size_t hi = l.end;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (rows_[mid][d].Compare(v) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    l.cur_begin = lo;
    if (l.cur_begin < l.end) SetRunAt(l.cur_begin);
  }

 private:
  struct Level {
    size_t begin, end;           // parent's row range
    size_t cur_begin, cur_end;   // rows carrying the current value
  };

  size_t Depth() const { return levels_.size() - 1; }

  /// Computes the run of rows sharing the value at `start` (column Depth()).
  void SetRunAt(size_t start) {
    Level& l = levels_.back();
    size_t d = Depth();
    const Value& v = rows_[start][d];
    size_t lo = start + 1;
    size_t hi = l.end;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (rows_[mid][d].Compare(v) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    l.cur_begin = start;
    l.cur_end = lo;
  }

  const std::vector<Tuple>& rows_;
  std::vector<Level> levels_;
};

/// The leapfrog search for one variable across the iterators that bind it.
class LeapfrogLevel {
 public:
  explicit LeapfrogLevel(std::vector<TrieIterator*> iters)
      : iters_(std::move(iters)) {}

  /// Positions all iterators at the first common value; false if none.
  bool Init() {
    for (TrieIterator* it : iters_) {
      if (it->AtEnd()) return false;
    }
    std::sort(iters_.begin(), iters_.end(),
              [](TrieIterator* a, TrieIterator* b) {
                return a->Key().Compare(b->Key()) < 0;
              });
    p_ = 0;
    return Search();
  }

  /// Advances past the current common value; false when exhausted.
  bool Advance() {
    iters_[p_]->Next();
    if (iters_[p_]->AtEnd()) return false;
    p_ = (p_ + 1) % iters_.size();
    return Search();
  }

  const Value& Key() const {
    return iters_[(p_ + iters_.size() - 1) % iters_.size()]->Key();
  }

 private:
  bool Search() {
    // Invariant: iters_[p_-1] (cyclically) holds the max key.
    Value max_key =
        iters_[(p_ + iters_.size() - 1) % iters_.size()]->Key();
    for (;;) {
      Value least = iters_[p_]->Key();
      if (least == max_key) return true;  // all equal
      iters_[p_]->SeekGE(max_key);
      if (iters_[p_]->AtEnd()) return false;
      max_key = iters_[p_]->Key();
      p_ = (p_ + 1) % iters_.size();
    }
  }

  std::vector<TrieIterator*> iters_;
  size_t p_ = 0;
};

}  // namespace

size_t LeapfrogJoin(
    int num_vars, const std::vector<AtomSpec>& atoms,
    const std::function<void(const std::vector<Value>&)>& emit) {
  for (const AtomSpec& atom : atoms) {
    for (size_t i = 1; i < atom.vars.size(); ++i) {
      InternalCheck(atom.vars[i - 1] < atom.vars[i],
                    "LFTJ atom columns must follow the variable order");
    }
  }
  std::vector<TrieIterator> iterators;
  iterators.reserve(atoms.size());
  for (const AtomSpec& atom : atoms) {
    iterators.emplace_back(*atom.rows);
  }

  // Which iterators participate at each variable, and each atom's depth.
  std::vector<std::vector<size_t>> at_var(num_vars);
  for (size_t a = 0; a < atoms.size(); ++a) {
    for (int v : atoms[a].vars) at_var[v].push_back(a);
  }

  size_t count = 0;
  std::vector<Value> binding(num_vars);

  std::function<void(int)> recurse = [&](int var) {
    if (var == num_vars) {
      ++count;
      if (emit) emit(binding);
      return;
    }
    std::vector<TrieIterator*> participating;
    for (size_t a : at_var[var]) {
      iterators[a].Open();
      participating.push_back(&iterators[a]);
    }
    LeapfrogLevel level(participating);
    if (level.Init()) {
      do {
        binding[var] = level.Key();
        recurse(var + 1);
      } while (level.Advance());
    }
    for (size_t a : at_var[var]) iterators[a].Up();
  };
  recurse(0);
  return count;
}

size_t LeapfrogJoinCount(int num_vars, const std::vector<AtomSpec>& atoms) {
  return LeapfrogJoin(num_vars, atoms, nullptr);
}

size_t CountTrianglesLeapfrog(const std::vector<Tuple>& edges) {
  // Variables x=0, y=1, z=2. Atoms: E(x,y) -> edges as-is; E(y,z) -> edges;
  // E(z,x) -> needs (x,z) order, i.e. the column-swapped copy, sorted.
  std::vector<Tuple> sorted_edges = edges;
  std::sort(sorted_edges.begin(), sorted_edges.end());
  std::vector<Tuple> swapped;
  swapped.reserve(edges.size());
  for (const Tuple& e : edges) {
    swapped.push_back(Tuple({e[1], e[0]}));
  }
  std::sort(swapped.begin(), swapped.end());

  std::vector<AtomSpec> atoms = {
      {&sorted_edges, {0, 1}},  // E(x,y)
      {&sorted_edges, {1, 2}},  // E(y,z)
      {&swapped, {0, 2}},       // E(z,x) stored as (x,z)
  };
  return LeapfrogJoinCount(3, atoms);
}

}  // namespace joins
}  // namespace rel
