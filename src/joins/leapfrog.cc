#include "joins/leapfrog.h"

#include <algorithm>
#include <numeric>

#include "base/error.h"

namespace rel {
namespace joins {

namespace {

/// A trie view over column-major sorted rows. At depth d the iterator walks
/// the distinct values of column d within the row range selected by the
/// values chosen at depths 0..d-1. Scans touch only the single column at the
/// current depth — the payoff of the columnar layout.
class TrieIterator {
 public:
  explicit TrieIterator(const SortedColumns& data) : data_(data) {}

  /// Descends into the children of the current position (or the root).
  void Open() {
    size_t begin = 0;
    size_t end = data_.rows;
    if (!levels_.empty()) {
      begin = levels_.back().cur_begin;
      end = levels_.back().cur_end;
    }
    levels_.push_back(Level{begin, end, begin, begin});
    if (begin < end) SetRunAt(begin);
  }

  void Up() { levels_.pop_back(); }

  bool AtEnd() const {
    const Level& l = levels_.back();
    return l.cur_begin >= l.end;
  }

  const Value& Key() const {
    return data_.cols[Depth()][levels_.back().cur_begin];
  }

  /// Advances to the next distinct value at this depth.
  void Next() {
    Level& l = levels_.back();
    l.cur_begin = l.cur_end;
    if (l.cur_begin < l.end) SetRunAt(l.cur_begin);
  }

  /// Positions at the first value >= `v` at this depth.
  void SeekGE(const Value& v) {
    Level& l = levels_.back();
    const std::vector<Value>& col = data_.cols[Depth()];
    size_t lo = l.cur_begin;
    size_t hi = l.end;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (col[mid].Compare(v) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    l.cur_begin = lo;
    if (l.cur_begin < l.end) SetRunAt(l.cur_begin);
  }

 private:
  struct Level {
    size_t begin, end;           // parent's row range
    size_t cur_begin, cur_end;   // rows carrying the current value
  };

  size_t Depth() const { return levels_.size() - 1; }

  /// Computes the run of rows sharing the value at `start` (column Depth()).
  void SetRunAt(size_t start) {
    Level& l = levels_.back();
    const std::vector<Value>& col = data_.cols[Depth()];
    const Value& v = col[start];
    size_t lo = start + 1;
    size_t hi = l.end;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (col[mid].Compare(v) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    l.cur_begin = start;
    l.cur_end = lo;
  }

  const SortedColumns& data_;
  std::vector<Level> levels_;
};

/// The leapfrog search for one variable across the iterators that bind it.
class LeapfrogLevel {
 public:
  explicit LeapfrogLevel(std::vector<TrieIterator*> iters)
      : iters_(std::move(iters)) {}

  /// Positions all iterators at the first common value; false if none.
  bool Init() {
    for (TrieIterator* it : iters_) {
      if (it->AtEnd()) return false;
    }
    std::sort(iters_.begin(), iters_.end(),
              [](TrieIterator* a, TrieIterator* b) {
                return a->Key().Compare(b->Key()) < 0;
              });
    p_ = 0;
    return Search();
  }

  /// Advances past the current common value; false when exhausted.
  bool Advance() {
    iters_[p_]->Next();
    if (iters_[p_]->AtEnd()) return false;
    p_ = (p_ + 1) % iters_.size();
    return Search();
  }

  const Value& Key() const {
    return iters_[(p_ + iters_.size() - 1) % iters_.size()]->Key();
  }

 private:
  bool Search() {
    // Invariant: iters_[p_-1] (cyclically) holds the max key.
    Value max_key =
        iters_[(p_ + iters_.size() - 1) % iters_.size()]->Key();
    for (;;) {
      Value least = iters_[p_]->Key();
      if (least == max_key) return true;  // all equal
      iters_[p_]->SeekGE(max_key);
      if (iters_[p_]->AtEnd()) return false;
      max_key = iters_[p_]->Key();
      p_ = (p_ + 1) % iters_.size();
    }
  }

  std::vector<TrieIterator*> iters_;
  size_t p_ = 0;
};

}  // namespace

namespace {

/// Shared permute-sort-gather core: `at(row, col)` reads the source, `order`
/// (empty = identity) permutes columns, rows come out sorted in the permuted
/// column order — the triejoin input invariant, maintained in one place.
template <typename AtFn>
SortedColumns BuildSortedColumns(size_t num_rows, size_t arity,
                                 const std::vector<size_t>& order,
                                 AtFn&& at) {
  SortedColumns out;
  const size_t out_arity = order.empty() ? arity : order.size();
  out.cols.resize(out_arity);
  out.rows = num_rows;

  auto col_of = [&](size_t k) { return order.empty() ? k : order[k]; };
  std::vector<uint32_t> perm(num_rows);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < out_arity; ++k) {
      int c = at(a, col_of(k)).Compare(at(b, col_of(k)));
      if (c != 0) return c < 0;
    }
    return false;
  });
  for (size_t k = 0; k < out_arity; ++k) {
    std::vector<Value>& col = out.cols[k];
    col.reserve(num_rows);
    for (uint32_t r : perm) col.push_back(at(r, col_of(k)));
  }
  return out;
}

}  // namespace

SortedColumns ToSortedColumns(const std::vector<Tuple>& rows,
                              const std::vector<size_t>& order) {
  const size_t arity = rows.empty() ? 0 : rows[0].arity();
  return BuildSortedColumns(
      rows.size(), arity, order,
      [&rows](size_t r, size_t c) -> const Value& { return rows[r][c]; });
}

SortedColumns ToSortedColumns(const ColumnArena& arena,
                              const std::vector<size_t>& order) {
  return BuildSortedColumns(arena.size(), arena.arity(), order,
                            [&arena](size_t r, size_t c) -> const Value& {
                              return arena.At(r, c);
                            });
}

size_t LeapfrogJoin(
    int num_vars, const std::vector<AtomSpec>& atoms,
    const std::function<void(const std::vector<Value>&)>& emit) {
  for (const AtomSpec& atom : atoms) {
    for (size_t i = 1; i < atom.vars.size(); ++i) {
      InternalCheck(atom.vars[i - 1] < atom.vars[i],
                    "LFTJ atom columns must follow the variable order");
    }
  }
  std::vector<TrieIterator> iterators;
  iterators.reserve(atoms.size());
  for (const AtomSpec& atom : atoms) {
    iterators.emplace_back(*atom.rel);
  }

  // Which iterators participate at each variable, and each atom's depth.
  std::vector<std::vector<size_t>> at_var(num_vars);
  for (size_t a = 0; a < atoms.size(); ++a) {
    for (int v : atoms[a].vars) at_var[v].push_back(a);
  }

  size_t count = 0;
  std::vector<Value> binding(num_vars);

  std::function<void(int)> recurse = [&](int var) {
    if (var == num_vars) {
      ++count;
      if (emit) emit(binding);
      return;
    }
    std::vector<TrieIterator*> participating;
    for (size_t a : at_var[var]) {
      iterators[a].Open();
      participating.push_back(&iterators[a]);
    }
    LeapfrogLevel level(participating);
    if (level.Init()) {
      do {
        binding[var] = level.Key();
        recurse(var + 1);
      } while (level.Advance());
    }
    for (size_t a : at_var[var]) iterators[a].Up();
  };
  recurse(0);
  return count;
}

size_t LeapfrogJoinCount(int num_vars, const std::vector<AtomSpec>& atoms) {
  return LeapfrogJoin(num_vars, atoms, nullptr);
}

size_t CountTrianglesLeapfrog(const std::vector<Tuple>& edges) {
  // Variables x=0, y=1, z=2. Atoms: E(x,y) -> edges as-is; E(y,z) -> edges;
  // E(z,x) -> needs (x,z) order, i.e. the column-swapped copy.
  SortedColumns sorted_edges = ToSortedColumns(edges);
  SortedColumns swapped = ToSortedColumns(edges, {1, 0});

  std::vector<AtomSpec> atoms = {
      {&sorted_edges, {0, 1}},  // E(x,y)
      {&sorted_edges, {1, 2}},  // E(y,z)
      {&swapped, {0, 2}},       // E(z,x) stored as (x,z)
  };
  return LeapfrogJoinCount(3, atoms);
}

}  // namespace joins
}  // namespace rel
