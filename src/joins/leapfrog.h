// Leapfrog Triejoin (Veldhuizen, ICDT 2014): the worst-case optimal join
// algorithm the paper cites as the enabler of GNF's many-join modeling style
// (Sections 2 and 7).
//
// Relations are presented as sorted tuple vectors; each atom maps its
// columns to global variables, and the global variable order must be
// consistent with every atom's column order (the classical triejoin
// precondition — callers materialize column-permuted copies where needed).

#ifndef REL_JOINS_LEAPFROG_H_
#define REL_JOINS_LEAPFROG_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "data/tuple.h"

namespace rel {
namespace joins {

/// One atom of the conjunctive query.
struct AtomSpec {
  /// Rows sorted lexicographically; all of one arity.
  const std::vector<Tuple>* rows = nullptr;
  /// Global variable id of each column; must be strictly increasing.
  std::vector<int> vars;
};

/// Enumerates all satisfying assignments of the join, invoking `emit` with
/// the values of variables 0..num_vars-1. Returns the number of results.
size_t LeapfrogJoin(int num_vars, const std::vector<AtomSpec>& atoms,
                    const std::function<void(const std::vector<Value>&)>& emit);

/// Counts results without materializing them.
size_t LeapfrogJoinCount(int num_vars, const std::vector<AtomSpec>& atoms);

/// Counts ordered triangles E(x,y), E(y,z), E(z,x) with LFTJ. `edges` must
/// be sorted; a column-swapped copy is built internally for the E(z,x) atom.
size_t CountTrianglesLeapfrog(const std::vector<Tuple>& edges);

}  // namespace joins
}  // namespace rel

#endif  // REL_JOINS_LEAPFROG_H_
