// Leapfrog Triejoin (Veldhuizen, ICDT 2014): the worst-case optimal join
// algorithm the paper cites as the enabler of GNF's many-join modeling style
// (Sections 2 and 7).
//
// Relations are presented column-major as SortedColumns — one flat value
// vector per column, rows sorted lexicographically. Each atom maps its
// columns to global variables, and the global variable order must be
// consistent with every atom's column order (the classical triejoin
// precondition — callers build column-permuted SortedColumns where needed;
// the Datalog evaluator caches them in its IndexCache).
//
// Thread safety: LeapfrogJoin allocates all iterator state (TrieIterator
// levels, leapfrog frames, the binding vector) per call, so concurrent
// joins over the same SortedColumns are safe as long as the inputs are not
// mutated — the parallel evaluator runs each leapfrog-routed rule as one
// task against cache-frozen inputs. ToSortedColumns reads an arena through
// At() only (no lazy views), so building inputs is likewise pure.

#ifndef REL_JOINS_LEAPFROG_H_
#define REL_JOINS_LEAPFROG_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "data/relation.h"
#include "data/tuple.h"

namespace rel {
namespace joins {

/// A column-major, lexicographically sorted tuple set: cols[c][r] is
/// position c of row r, and rows 0..rows-1 ascend in tuple order.
struct SortedColumns {
  std::vector<std::vector<Value>> cols;
  size_t rows = 0;

  size_t arity() const { return cols.size(); }
};

/// Builds SortedColumns from row-major tuples (all of one arity). When
/// `order` is non-empty it permutes the columns: output column k holds input
/// column order[k]. Rows are sorted in the permuted order.
SortedColumns ToSortedColumns(const std::vector<Tuple>& rows,
                              const std::vector<size_t>& order = {});

/// Same, reading straight from a relation's column arena (no intermediate
/// tuples). Used by the Datalog IndexCache to materialize triejoin inputs.
SortedColumns ToSortedColumns(const ColumnArena& arena,
                              const std::vector<size_t>& order = {});

/// One atom of the conjunctive query.
struct AtomSpec {
  /// Column-major sorted rows; all of one arity.
  const SortedColumns* rel = nullptr;
  /// Global variable id of each column; must be strictly increasing.
  std::vector<int> vars;
};

/// Enumerates all satisfying assignments of the join, invoking `emit` with
/// the values of variables 0..num_vars-1. Returns the number of results.
size_t LeapfrogJoin(int num_vars, const std::vector<AtomSpec>& atoms,
                    const std::function<void(const std::vector<Value>&)>& emit);

/// Counts results without materializing them.
size_t LeapfrogJoinCount(int num_vars, const std::vector<AtomSpec>& atoms);

/// Counts ordered triangles E(x,y), E(y,z), E(z,x) with LFTJ. Column-major
/// copies (one of them column-swapped for the E(z,x) atom) are built
/// internally.
size_t CountTrianglesLeapfrog(const std::vector<Tuple>& edges);

}  // namespace joins
}  // namespace rel

#endif  // REL_JOINS_LEAPFROG_H_
