// Binary hash join over fixed-arity tuple vectors: the conventional join
// the paper's worst-case-optimal-join discussion compares against
// (Section 7, citing Ngo et al. and Veldhuizen).

#ifndef REL_JOINS_HASH_JOIN_H_
#define REL_JOINS_HASH_JOIN_H_

#include <cstddef>
#include <vector>

#include "data/tuple.h"

namespace rel {
namespace joins {

/// Equi-join: emits left ⋈ right on left[left_keys[i]] == right[right_keys[i]]
/// as the concatenation of the left tuple with the non-key columns of the
/// right tuple. Builds a hash table on the smaller input.
std::vector<Tuple> HashJoin(const std::vector<Tuple>& left,
                            const std::vector<size_t>& left_keys,
                            const std::vector<Tuple>& right,
                            const std::vector<size_t>& right_keys);

/// Counts triangles in `edges` (pairs) with the binary-join plan
/// (E ⋈ E) ⋈ E. Returns the number of ordered triangles (x,y,z) with
/// E(x,y), E(y,z), E(z,x). The intermediate (E ⋈ E) result is materialized,
/// which is exactly the weakness worst-case optimal joins avoid.
size_t CountTrianglesBinaryJoin(const std::vector<Tuple>& edges);

}  // namespace joins
}  // namespace rel

#endif  // REL_JOINS_HASH_JOIN_H_
