#include "joins/hash_join.h"

#include "base/flat_index.h"
#include "base/hash.h"

namespace rel {
namespace joins {

namespace {

size_t KeyHash(const Tuple& t, const std::vector<size_t>& keys) {
  size_t h = 0x9d2c;
  for (size_t k : keys) h = HashCombine(h, t[k].Hash());
  return h;
}

}  // namespace

std::vector<Tuple> HashJoin(const std::vector<Tuple>& left,
                            const std::vector<size_t>& left_keys,
                            const std::vector<Tuple>& right,
                            const std::vector<size_t>& right_keys) {
  std::vector<Tuple> out;
  if (left.empty() || right.empty()) return out;

  // Build on the right side, probe with the left (output order is
  // left-major, which callers rely on for determinism after sorting).
  FlatHashIndex index;
  index.Build(right.size(),
              [&](size_t i) { return KeyHash(right[i], right_keys); });
  std::vector<bool> is_key(right[0].arity(), false);
  for (size_t k : right_keys) is_key[k] = true;

  for (const Tuple& l : left) {
    index.Probe(KeyHash(l, left_keys), [&](uint32_t ri) {
      const Tuple& r = right[ri];
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (l[left_keys[i]] != r[right_keys[i]]) return;
      }
      Tuple joined = l;
      for (size_t i = 0; i < r.arity(); ++i) {
        if (!is_key[i]) joined.Append(r[i]);
      }
      out.push_back(std::move(joined));
    });
  }
  return out;
}

size_t CountTrianglesBinaryJoin(const std::vector<Tuple>& edges) {
  // paths = E(x,y) ⋈ E(y,z): stored column-major as three flat value
  // vectors — the quadratic intermediate is still materialized (that is the
  // point of this baseline) but with no per-path tuple allocation.
  FlatHashIndex by_src;
  by_src.Build(edges.size(), [&](size_t i) {
    return HashCombine(0x9d2c, edges[i][0].Hash());
  });
  std::vector<Value> px, py, pz;
  for (const Tuple& e : edges) {
    size_t h = HashCombine(0x9d2c, e[1].Hash());
    by_src.Probe(h, [&](uint32_t ri) {
      const Tuple& r = edges[ri];
      if (r[0] != e[1]) return;
      px.push_back(e[0]);
      py.push_back(e[1]);
      pz.push_back(r[1]);
    });
  }

  // triangles: paths(x,y,z) ⋈ E(z,x), probing an index over whole edges.
  FlatHashIndex by_edge;
  by_edge.Build(edges.size(), [&](size_t i) {
    return HashCombine(HashCombine(0x77aa, edges[i][0].Hash()),
                       edges[i][1].Hash());
  });
  size_t count = 0;
  for (size_t p = 0; p < px.size(); ++p) {
    size_t h =
        HashCombine(HashCombine(0x77aa, pz[p].Hash()), px[p].Hash());
    by_edge.Probe(h, [&](uint32_t ei) {
      const Tuple& e = edges[ei];
      if (e[0] == pz[p] && e[1] == px[p]) ++count;
    });
  }
  return count;
}

}  // namespace joins
}  // namespace rel
