#include "joins/hash_join.h"

#include <unordered_map>

#include "base/hash.h"

namespace rel {
namespace joins {

namespace {

size_t KeyHash(const Tuple& t, const std::vector<size_t>& keys) {
  size_t h = 0x9d2c;
  for (size_t k : keys) h = HashCombine(h, t[k].Hash());
  return h;
}

bool KeysEqual(const Tuple& a, const std::vector<size_t>& ka, const Tuple& b,
               const std::vector<size_t>& kb) {
  for (size_t i = 0; i < ka.size(); ++i) {
    if (a[ka[i]] != b[kb[i]]) return false;
  }
  return true;
}

}  // namespace

std::vector<Tuple> HashJoin(const std::vector<Tuple>& left,
                            const std::vector<size_t>& left_keys,
                            const std::vector<Tuple>& right,
                            const std::vector<size_t>& right_keys) {
  std::vector<Tuple> out;
  if (left.empty() || right.empty()) return out;

  // Build on the right side, probe with the left (output order is
  // left-major, which callers rely on for determinism after sorting).
  std::unordered_multimap<size_t, size_t> index;
  index.reserve(right.size());
  for (size_t i = 0; i < right.size(); ++i) {
    index.emplace(KeyHash(right[i], right_keys), i);
  }
  std::vector<bool> is_key(right.empty() ? 0 : right[0].arity(), false);
  for (size_t k : right_keys) is_key[k] = true;

  for (const Tuple& l : left) {
    auto [lo, hi] = index.equal_range(KeyHash(l, left_keys));
    for (auto it = lo; it != hi; ++it) {
      const Tuple& r = right[it->second];
      if (!KeysEqual(l, left_keys, r, right_keys)) continue;
      Tuple joined = l;
      for (size_t i = 0; i < r.arity(); ++i) {
        if (!is_key[i]) joined.Append(r[i]);
      }
      out.push_back(std::move(joined));
    }
  }
  return out;
}

size_t CountTrianglesBinaryJoin(const std::vector<Tuple>& edges) {
  // paths = E(x,y) ⋈ E(y,z): tuples (x, y, z) — materialized!
  std::vector<Tuple> paths = HashJoin(edges, {1}, edges, {0});
  // triangles: paths(x,y,z) ⋈ E(z,x).
  std::unordered_multimap<size_t, size_t> index;
  index.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    size_t h = HashCombine(HashCombine(0x77aa, edges[i][0].Hash()),
                           edges[i][1].Hash());
    index.emplace(h, i);
  }
  size_t count = 0;
  for (const Tuple& p : paths) {
    size_t h =
        HashCombine(HashCombine(0x77aa, p[2].Hash()), p[0].Hash());
    auto [lo, hi] = index.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& e = edges[it->second];
      if (e[0] == p[2] && e[1] == p[0]) ++count;
    }
  }
  return count;
}

}  // namespace joins
}  // namespace rel
