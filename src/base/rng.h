// Deterministic random number generation for workload generators.
//
// Benchmarks and property tests must be reproducible across runs and
// platforms, so all randomness flows through this SplitMix64-based generator
// rather than std::mt19937 (whose distributions are not portable).

#ifndef REL_BASE_RNG_H_
#define REL_BASE_RNG_H_

#include <cstdint>

namespace rel {

/// SplitMix64: tiny, fast, and fully specified, so generated workloads are
/// identical on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p`.
  bool NextBool(double p);

 private:
  uint64_t state_;
};

}  // namespace rel

#endif  // REL_BASE_RNG_H_
