#include "base/rng.h"

namespace rel {

uint64_t Rng::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection-free modulo bias is negligible for the bounds used by the
  // generators (< 2^32), but use Lemire's multiply-shift anyway.
  unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
  return static_cast<uint64_t>(product >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace rel
