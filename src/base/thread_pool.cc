#include "base/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "base/error.h"

namespace rel {

namespace {

// Which pool (if any) the current thread is a worker of, and its index
// there. A worker thread belongs to exactly one pool for its lifetime;
// non-worker threads keep the nullptr default and map to the helper slot.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

uint64_t ThreadPool::Stats::TotalTasks() const {
  uint64_t sum = 0;
  for (uint64_t t : tasks) sum += t;
  return sum;
}

uint64_t ThreadPool::Stats::TotalSteals() const {
  uint64_t sum = 0;
  for (uint64_t s : steals) sum += s;
  return sum;
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool& ThreadPool::Shared(int num_threads) {
  int n = std::max(1, num_threads);
  // Heap-allocated and never destroyed: worker threads must not be joined
  // during static destruction (a task could still reference other statics),
  // and the registry stays reachable so leak checkers don't flag it.
  static std::mutex* mu = new std::mutex();
  static auto* pools = new std::map<int, std::unique_ptr<ThreadPool>>();
  std::lock_guard<std::mutex> lock(*mu);
  std::unique_ptr<ThreadPool>& pool = (*pools)[n];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(n);
  return *pool;
}

bool ThreadPool::TryClaimHelper() {
  std::lock_guard<std::mutex> lock(helper_mu_);
  std::thread::id self = std::this_thread::get_id();
  if (helper_depth_ == 0) {
    helper_id_ = self;
    helper_depth_ = 1;
    return true;
  }
  if (helper_id_ == self) {
    ++helper_depth_;
    return true;
  }
  return false;
}

void ThreadPool::ReleaseHelper() {
  std::lock_guard<std::mutex> lock(helper_mu_);
  InternalCheck(helper_depth_ > 0 &&
                    helper_id_ == std::this_thread::get_id(),
                "ReleaseHelper without a matching TryClaimHelper");
  if (--helper_depth_ == 0) helper_id_ = std::thread::id();
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerState>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker between its queued_ check and its
    // cv wait must observe the notify.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::CurrentSlot() const {
  if (tls_pool == this) return tls_worker_index;
  return num_threads();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks.resize(num_slots(), 0);
  s.steals.resize(num_slots(), 0);
  for (int i = 0; i < num_threads(); ++i) {
    std::lock_guard<std::mutex> lock(queues_[i]->mu);
    s.tasks[i] = queues_[i]->executed;
    s.steals[i] = queues_[i]->steals;
  }
  std::lock_guard<std::mutex> lock(helper_mu_);
  s.tasks[num_threads()] = helper_executed_;
  s.steals[num_threads()] = helper_steals_;
  return s;
}

void ThreadPool::Submit(TaskPtr task) {
  size_t index;
  if (tls_pool == this) {
    index = static_cast<size_t>(tls_worker_index);
  } else {
    index = next_queue_.fetch_add(1, std::memory_order_relaxed) %
            queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mu);
    queues_[index]->deque.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section, like the destructor's: a worker between its
    // queued_ predicate check and its cv wait must not miss this notify
    // (a lost wakeup costs the full 1ms park per round barrier).
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

ThreadPool::TaskPtr ThreadPool::TryClaim(int slot, bool* stolen) {
  const int n = num_threads();
  // Own deque first, LIFO (workers only; the helper has no deque).
  if (slot < n) {
    WorkerState& own = *queues_[slot];
    std::lock_guard<std::mutex> lock(own.mu);
    while (!own.deque.empty()) {
      TaskPtr task = std::move(own.deque.back());
      own.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
        *stolen = false;
        return task;
      }
    }
  }
  // Steal sweep, FIFO, starting after our own slot for spread.
  for (int k = 0; k < n; ++k) {
    int victim = (slot + 1 + k) % n;
    if (victim == slot) continue;
    WorkerState& q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    while (!q.deque.empty()) {
      TaskPtr task = std::move(q.deque.front());
      q.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
        *stolen = true;
        return task;
      }
    }
  }
  return nullptr;
}

void ThreadPool::Execute(const TaskPtr& task, int slot, bool stolen) {
  try {
    task->fn();
  } catch (...) {
    TaskGroup* g = task->group;
    std::lock_guard<std::mutex> lock(g->error_mu_);
    if (!g->error_) g->error_ = std::current_exception();
  }
  if (slot < num_threads()) {
    WorkerState& q = *queues_[slot];
    std::lock_guard<std::mutex> lock(q.mu);
    ++q.executed;
    if (stolen) ++q.steals;
  } else {
    std::lock_guard<std::mutex> lock(helper_mu_);
    // The helper slot's single-writer guarantee (per-thread staging relies
    // on it) holds only while exactly one outside thread executes tasks;
    // Wait() acquires the claim before executing, so a violation here is an
    // internal bug — fail fast instead of racing silently.
    InternalCheck(helper_depth_ > 0 &&
                      helper_id_ == std::this_thread::get_id(),
                  "non-worker thread executing pool tasks without holding "
                  "the helper claim (helper slot is single-writer)");
    ++helper_executed_;
    if (stolen) ++helper_steals_;
  }
  // Decrement-and-notify under wait_mu_, nothing group-related after: the
  // acq_rel decrement publishes fn's effects (staging writes) to whoever
  // observes pending_ reach zero, and Wait() re-acquires wait_mu_ before
  // returning, so the group outlives this epilogue.
  TaskGroup* g = task->group;
  {
    std::lock_guard<std::mutex> lock(g->wait_mu_);
    g->pending_.fetch_sub(1, std::memory_order_acq_rel);
    g->wait_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    bool stolen = false;
    TaskPtr task = TryClaim(index, &stolen);
    if (task) {
      Execute(task, index, stolen);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             stop_.load(std::memory_order_acquire);
    });
  }
}

void ThreadPool::TaskGroup::Run(std::function<void()> fn) {
  auto task = std::make_shared<TaskItem>();
  task->fn = std::move(fn);
  task->group = this;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(q_mu_);
    unclaimed_.push_back(task);
  }
  pool_->Submit(std::move(task));
}

ThreadPool::TaskPtr ThreadPool::TaskGroup::ClaimOwn() {
  std::lock_guard<std::mutex> lock(q_mu_);
  while (!unclaimed_.empty()) {
    TaskPtr task = std::move(unclaimed_.front());
    unclaimed_.pop_front();
    if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
      return task;
    }
    // Already taken by a worker; its deque copy (or ours) is a zombie the
    // popper discards on sight.
  }
  return nullptr;
}

void ThreadPool::TaskGroup::Wait() {
  const int slot = pool_->CurrentSlot();
  const bool outside = slot == pool_->num_threads();
  // An outside thread may execute tasks only while holding the helper
  // claim: the shared pool can have several outside waiters at once, and
  // they would otherwise all write the same staging slot. A waiter that
  // loses the claim parks instead (its tasks still progress on the
  // workers) and retries each wakeup — the holder releases on Wait exit.
  bool helper = false;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (outside && !helper) helper = pool_->TryClaimHelper();
    if (!outside || helper) {
      // This group's work first: a round barrier should never be extended
      // by an unrelated long task while its own chunks sit queued.
      if (TaskPtr task = ClaimOwn()) {
        pool_->Execute(task, slot, /*stolen=*/false);
        continue;
      }
      bool stolen = false;
      if (TaskPtr task = pool_->TryClaim(slot, &stolen)) {
        pool_->Execute(task, slot, stolen);
        continue;
      }
    }
    // Nothing claimable: our remaining tasks are running on other threads.
    // Park until the count drops (bounded, so newly stealable foreign work
    // is picked up promptly too).
    std::unique_lock<std::mutex> lock(wait_mu_);
    wait_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  if (helper) pool_->ReleaseHelper();
  // Settle the final completer: it decremented under wait_mu_, so once we
  // re-acquire the lock its Execute epilogue has fully released the group.
  { std::lock_guard<std::mutex> lock(wait_mu_); }
  {
    std::lock_guard<std::mutex> lock(q_mu_);
    unclaimed_.clear();  // drop zombie references from finished rounds
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace rel
