// Error types for the Rel engine.
//
// All user-facing failures (parse errors, safety violations, aborted
// transactions, ...) are reported as exceptions derived from RelError so a
// host application can catch one type. Each carries an ErrorKind that tests
// can assert on.

#ifndef REL_BASE_ERROR_H_
#define REL_BASE_ERROR_H_

#include <stdexcept>
#include <string>

namespace rel {

/// Classifies every failure the engine can report.
enum class ErrorKind {
  kParse,           ///< lexical or syntactic error in Rel source
  kSafety,          ///< expression could be infinite / no safe evaluation order
  kType,            ///< ill-typed operation (e.g. "a" + 1)
  kArity,           ///< application with an impossible arity
  kAmbiguous,       ///< first/second-order ambiguity; needs ?{} or &{} (Addendum A)
  kUnknownRelation, ///< reference to a relation with no facts and no rules
  kNonConvergent,   ///< replacement fixpoint exceeded the iteration cap
  kConstraint,      ///< integrity constraint violated; transaction aborted
  kTransaction,     ///< misuse of the transaction API
  kIo,              ///< file I/O failure in the durability layer
  kCorruption,      ///< stored bytes failed a checksum or decode
  kInternal,        ///< invariant violation inside the engine (a bug)
};

/// Returns a stable human-readable name for `kind` ("parse error", ...).
const char* ErrorKindName(ErrorKind kind);

/// Base class of all errors raised by the Rel engine.
class RelError : public std::runtime_error {
 public:
  RelError(ErrorKind kind, const std::string& message);

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Error with a source position, raised by the lexer and parser.
class ParseError : public RelError {
 public:
  ParseError(const std::string& message, int line, int column);

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when an integrity constraint is violated; carries the ic name.
class ConstraintViolation : public RelError {
 public:
  ConstraintViolation(const std::string& ic_name, const std::string& message);

  const std::string& ic_name() const { return ic_name_; }

 private:
  std::string ic_name_;
};

/// Throws RelError(kInternal) when `condition` is false. Used for invariants
/// that indicate engine bugs rather than bad user input.
void InternalCheck(bool condition, const char* what);

/// A non-throwing result carrier for the storage layer, where failures
/// (a full disk, a torn record, a checksum mismatch) are expected outcomes
/// to degrade through, not exceptions to unwind on. Ok() is the success
/// value; failures carry the same ErrorKind taxonomy as RelError so the
/// Engine can rethrow one as the other at its API boundary.
class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status Error(ErrorKind kind, std::string message) {
    Status s;
    s.failed_ = true;
    s.kind_ = kind;
    s.message_ = std::move(message);
    return s;
  }
  static Status IoError(std::string message) {
    return Error(ErrorKind::kIo, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Error(ErrorKind::kCorruption, std::move(message));
  }

  bool ok() const { return !failed_; }
  /// Requires !ok().
  ErrorKind kind() const { return kind_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<kind name>: <message>".
  std::string ToString() const;

 private:
  bool failed_ = false;
  ErrorKind kind_ = ErrorKind::kInternal;
  std::string message_;
};

}  // namespace rel

#endif  // REL_BASE_ERROR_H_
