// Error types for the Rel engine.
//
// All user-facing failures (parse errors, safety violations, aborted
// transactions, ...) are reported as exceptions derived from RelError so a
// host application can catch one type. Each carries an ErrorKind that tests
// can assert on.

#ifndef REL_BASE_ERROR_H_
#define REL_BASE_ERROR_H_

#include <stdexcept>
#include <string>

namespace rel {

/// Classifies every failure the engine can report.
enum class ErrorKind {
  kParse,           ///< lexical or syntactic error in Rel source
  kSafety,          ///< expression could be infinite / no safe evaluation order
  kType,            ///< ill-typed operation (e.g. "a" + 1)
  kArity,           ///< application with an impossible arity
  kAmbiguous,       ///< first/second-order ambiguity; needs ?{} or &{} (Addendum A)
  kUnknownRelation, ///< reference to a relation with no facts and no rules
  kNonConvergent,   ///< replacement fixpoint exceeded the iteration cap
  kConstraint,      ///< integrity constraint violated; transaction aborted
  kTransaction,     ///< misuse of the transaction API
  kInternal,        ///< invariant violation inside the engine (a bug)
};

/// Returns a stable human-readable name for `kind` ("parse error", ...).
const char* ErrorKindName(ErrorKind kind);

/// Base class of all errors raised by the Rel engine.
class RelError : public std::runtime_error {
 public:
  RelError(ErrorKind kind, const std::string& message);

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Error with a source position, raised by the lexer and parser.
class ParseError : public RelError {
 public:
  ParseError(const std::string& message, int line, int column);

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when an integrity constraint is violated; carries the ic name.
class ConstraintViolation : public RelError {
 public:
  ConstraintViolation(const std::string& ic_name, const std::string& message);

  const std::string& ic_name() const { return ic_name_; }

 private:
  std::string ic_name_;
};

/// Throws RelError(kInternal) when `condition` is false. Used for invariants
/// that indicate engine bugs rather than bad user input.
void InternalCheck(bool condition, const char* what);

}  // namespace rel

#endif  // REL_BASE_ERROR_H_
