// A small work-stealing task pool — the concurrency substrate of the
// parallel Datalog evaluator (src/datalog/eval.cc) and the engine's
// parallel integrity-constraint checking (src/core/engine.cc).
//
// Design:
//
//   * Each worker owns a deque of tasks. Submitting from a worker pushes to
//     that worker's own deque; submitting from an outside thread distributes
//     round-robin. Workers pop their own deque LIFO (cache-warm) and steal
//     FIFO from the others when empty.
//
//   * Fork-join is expressed with TaskGroup. TaskGroup::Wait() does not
//     block the calling thread: it *helps* — first draining the group's own
//     unclaimed tasks (each task is reachable both from a worker deque and
//     from its group's queue; an atomic claim flag arbitrates), then
//     stealing arbitrary pool work, and only parking (condition variable,
//     bounded timeout) when nothing is claimable — until every task of the
//     group has completed. A task may therefore itself create a TaskGroup
//     and Wait on it (nested fork-join) without deadlock: waiting threads
//     always make progress executing somebody's tasks.
//
//   * Every thread that can execute tasks has a stable *slot* index usable
//     for per-thread staging buffers: workers get 0..num_threads-1 and any
//     non-worker thread (the caller helping inside Wait) gets num_threads.
//     At most one non-worker thread may execute tasks of a given pool (the
//     single Evaluate()/CheckConstraints() caller in practice).
//
//   * The first exception thrown by a task of a group is captured and
//     rethrown from that group's Wait(); later exceptions of the same group
//     are dropped. Counters (per-slot executed tasks and steals) feed the
//     evaluator's EvalStats.
//
// The pool is intentionally modest: lock-per-deque, no lock-free tricks.
// Tasks in this codebase are coarse (thousands of probe/emit operations), so
// queue overhead is noise; what matters is that waiting threads help and
// that per-thread slots make single-writer staging possible.

#ifndef REL_BASE_THREAD_POOL_H_
#define REL_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rel {

class ThreadPool {
 public:
  class TaskGroup;

 private:
  /// One schedulable task. Claiming is atomic because the same item is
  /// reachable both from a worker deque (Submit) and from its group's
  /// unclaimed queue (TaskGroup::Wait); whichever side wins the exchange
  /// runs it, the other drops its reference on sight.
  struct TaskItem {
    std::function<void()> fn;
    TaskGroup* group;
    std::atomic<bool> claimed{false};
  };
  using TaskPtr = std::shared_ptr<TaskItem>;

 public:
  /// Spawns `num_threads` workers (>= 1; use HardwareThreads() to size).
  explicit ThreadPool(int num_threads);
  /// Joins all workers; pending tasks are completed first. Every TaskGroup
  /// must be destroyed (or at least Wait()ed) before its pool.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Sized from queues_, not workers_: the queue array is complete before
  // the first worker thread starts, while workers_ is still growing then.
  int num_threads() const { return static_cast<int>(queues_.size()); }
  /// Number of distinct slot indices CurrentSlot() can return: one per
  /// worker plus one for the (single) outside thread that helps in Wait().
  int num_slots() const { return num_threads() + 1; }
  /// The calling thread's slot: its worker index, or num_threads() when the
  /// caller is not one of this pool's workers.
  int CurrentSlot() const;

  /// Per-slot counters, aggregated under the queue locks (stable snapshot
  /// only once all groups have been waited on).
  struct Stats {
    std::vector<uint64_t> tasks;   // tasks executed, by slot
    std::vector<uint64_t> steals;  // tasks taken from another worker's deque
    uint64_t TotalTasks() const;
    uint64_t TotalSteals() const;
  };
  Stats stats() const;

  /// The machine's hardware thread count (>= 1).
  static int HardwareThreads();

  /// The process-wide shared pool for this thread count, created on first
  /// use and kept alive for the process lifetime (so repeated Evaluate
  /// calls stop paying thread spawn/join per call). One pool per distinct
  /// count; concurrent users of the same pool interleave their tasks —
  /// safe, because fork-join waiting always makes progress and per-slot
  /// staging is protected by the helper claim below.
  static ThreadPool& Shared(int num_threads);

  /// Claims the helper slot (the slot CurrentSlot() returns for non-worker
  /// threads) for the calling thread. Per-thread staging indexed by slot is
  /// single-writer only if at most one outside thread executes tasks at a
  /// time; with a shared pool several outside threads can Wait()
  /// concurrently, so execution rights are claimed instead of assumed.
  /// Reentrant for the holder (nested fork-join on the same thread).
  /// Returns false when another thread holds the claim — the caller parks
  /// without executing instead.
  bool TryClaimHelper();
  /// Releases one level of the calling thread's helper claim.
  void ReleaseHelper();

  /// A fork-join scope: Run() submits, Wait() helps until all submitted
  /// tasks completed, rethrowing the first captured task exception.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
    /// Drains remaining tasks; a still-pending task exception is swallowed
    /// here (call Wait() explicitly to observe it).
    ~TaskGroup() {
      try {
        Wait();
      } catch (...) {
      }
    }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Run(std::function<void()> fn);
    void Wait();

   private:
    friend class ThreadPool;

    /// Pops the next not-yet-claimed task of this group, or null.
    TaskPtr ClaimOwn();

    ThreadPool* pool_;
    std::atomic<size_t> pending_{0};
    // The group's own view of its unclaimed tasks — what Wait() drains
    // before stealing foreign work (so a round barrier is never extended
    // by an unrelated long task while its own chunks sit queued).
    std::mutex q_mu_;
    std::deque<TaskPtr> unclaimed_;
    // Parking for Wait(): the final completion notifies under wait_mu_,
    // and Wait re-acquires wait_mu_ before returning, so the group cannot
    // be destroyed while a completer is still inside Execute's epilogue.
    std::mutex wait_mu_;
    std::condition_variable wait_cv_;
    std::mutex error_mu_;
    std::exception_ptr error_;
  };

 private:
  void Submit(TaskPtr task);
  void WorkerLoop(int index);
  /// Runs `task` on the calling thread (claim already won) and settles its
  /// group bookkeeping, capturing the first exception.
  void Execute(const TaskPtr& task, int slot, bool stolen);
  /// Claims the next runnable task: own deque LIFO first (workers), then a
  /// FIFO steal sweep over all deques. Returns nullptr when empty.
  TaskPtr TryClaim(int slot, bool* stolen);

  struct WorkerState {
    mutable std::mutex mu;
    std::deque<TaskPtr> deque;
    uint64_t executed = 0;
    uint64_t steals = 0;
  };

  std::vector<std::unique_ptr<WorkerState>> queues_;
  std::vector<std::thread> workers_;
  // Helper-slot counters (the outside thread has no WorkerState), plus the
  // claim state naming the one non-worker thread currently allowed to
  // execute tasks — a second one would silently share the helper staging
  // slot, so Execute asserts the claim is held by the caller.
  mutable std::mutex helper_mu_;
  std::thread::id helper_id_;
  int helper_depth_ = 0;
  uint64_t helper_executed_ = 0;
  uint64_t helper_steals_ = 0;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> queued_{0};
  std::atomic<uint64_t> next_queue_{0};
};

}  // namespace rel

#endif  // REL_BASE_THREAD_POOL_H_
