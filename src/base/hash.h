// Hash combining utilities (FNV-1a style mixing), shared by Tuple, Value and
// Relation hashing.

#ifndef REL_BASE_HASH_H_
#define REL_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace rel {

/// Mixes `value` into the running hash `seed` (boost::hash_combine-style but
/// with a 64-bit multiplier).
inline size_t HashCombine(size_t seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

template <typename T>
size_t HashOf(const T& v) {
  return std::hash<T>{}(v);
}

}  // namespace rel

#endif  // REL_BASE_HASH_H_
