#include "base/error.h"

namespace rel {

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kParse:
      return "parse error";
    case ErrorKind::kSafety:
      return "safety error";
    case ErrorKind::kType:
      return "type error";
    case ErrorKind::kArity:
      return "arity error";
    case ErrorKind::kAmbiguous:
      return "ambiguous application";
    case ErrorKind::kUnknownRelation:
      return "unknown relation";
    case ErrorKind::kNonConvergent:
      return "non-convergent fixpoint";
    case ErrorKind::kConstraint:
      return "integrity constraint violation";
    case ErrorKind::kTransaction:
      return "transaction error";
    case ErrorKind::kIo:
      return "io error";
    case ErrorKind::kCorruption:
      return "corruption";
    case ErrorKind::kInternal:
      return "internal error";
  }
  return "error";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(ErrorKindName(kind_)) + ": " + message_;
}

RelError::RelError(ErrorKind kind, const std::string& message)
    : std::runtime_error(std::string(ErrorKindName(kind)) + ": " + message),
      kind_(kind) {}

ParseError::ParseError(const std::string& message, int line, int column)
    : RelError(ErrorKind::kParse, message + " (at line " +
                                      std::to_string(line) + ", column " +
                                      std::to_string(column) + ")"),
      line_(line),
      column_(column) {}

ConstraintViolation::ConstraintViolation(const std::string& ic_name,
                                         const std::string& message)
    : RelError(ErrorKind::kConstraint, "ic " + ic_name + ": " + message),
      ic_name_(ic_name) {}

void InternalCheck(bool condition, const char* what) {
  if (!condition) {
    throw RelError(ErrorKind::kInternal, what);
  }
}

}  // namespace rel
