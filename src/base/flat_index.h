// A minimal build-once hash index: flat (hash, row) pairs sorted by hash,
// probed with binary search plus a contiguous equal-hash run. Beats
// node-based multimaps on probe-heavy workloads and is shared by the Datalog
// HashIndex and the standalone join algorithms. Callers verify the actual
// key columns on each probed row — the index only narrows by hash.

#ifndef REL_BASE_FLAT_INDEX_H_
#define REL_BASE_FLAT_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rel {

class FlatHashIndex {
 public:
  /// (Re)builds over rows 0..num_rows-1 with hash_of(row) as the key hash.
  template <typename HashFn>
  void Build(size_t num_rows, HashFn&& hash_of) {
    entries_.clear();
    entries_.reserve(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      entries_.push_back(Entry{hash_of(i), static_cast<uint32_t>(i)});
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.hash < b.hash; });
  }

  /// Invokes fn(row) for every row whose key hash equals `h`.
  template <typename Fn>
  void Probe(size_t h, Fn&& fn) const {
    auto lo = std::lower_bound(
        entries_.begin(), entries_.end(), h,
        [](const Entry& e, size_t hash) { return e.hash < hash; });
    for (; lo != entries_.end() && lo->hash == h; ++lo) fn(lo->row);
  }

  /// Appends rows [begin_row, end_row) to an already-built index, keeping
  /// the hash order: the new entries are sorted among themselves and merged
  /// into the existing run. O(new log new + total) — the incremental path
  /// when a caller knows the underlying storage only grew.
  template <typename HashFn>
  void Append(size_t begin_row, size_t end_row, HashFn&& hash_of) {
    size_t old_size = entries_.size();
    entries_.reserve(entries_.size() + (end_row - begin_row));
    for (size_t i = begin_row; i < end_row; ++i) {
      entries_.push_back(Entry{hash_of(i), static_cast<uint32_t>(i)});
    }
    auto mid = entries_.begin() + static_cast<ptrdiff_t>(old_size);
    auto by_hash = [](const Entry& a, const Entry& b) {
      return a.hash < b.hash;
    };
    std::sort(mid, entries_.end(), by_hash);
    std::inplace_merge(entries_.begin(), mid, entries_.end(), by_hash);
  }

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    size_t hash;
    uint32_t row;
  };
  std::vector<Entry> entries_;
};

}  // namespace rel

#endif  // REL_BASE_FLAT_INDEX_H_
