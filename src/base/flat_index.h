// A minimal build-once hash index: flat (hash, row) pairs sorted by hash,
// probed with binary search plus a contiguous equal-hash run. Beats
// node-based multimaps on probe-heavy workloads and is shared by the Datalog
// HashIndex and the standalone join algorithms. Callers verify the actual
// key columns on each probed row — the index only narrows by hash.

#ifndef REL_BASE_FLAT_INDEX_H_
#define REL_BASE_FLAT_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rel {

class FlatHashIndex {
 public:
  /// (Re)builds over rows 0..num_rows-1 with hash_of(row) as the key hash.
  template <typename HashFn>
  void Build(size_t num_rows, HashFn&& hash_of) {
    entries_.clear();
    entries_.reserve(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      entries_.push_back(Entry{hash_of(i), static_cast<uint32_t>(i)});
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.hash < b.hash; });
  }

  /// Invokes fn(row) for every row whose key hash equals `h`.
  template <typename Fn>
  void Probe(size_t h, Fn&& fn) const {
    auto lo = std::lower_bound(
        entries_.begin(), entries_.end(), h,
        [](const Entry& e, size_t hash) { return e.hash < hash; });
    for (; lo != entries_.end() && lo->hash == h; ++lo) fn(lo->row);
  }

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    size_t hash;
    uint32_t row;
  };
  std::vector<Entry> entries_;
};

}  // namespace rel

#endif  // REL_BASE_FLAT_INDEX_H_
