// CRC32 (the IEEE 802.3 polynomial, reflected form 0xEDB88320) used by the
// storage layer to checksum every write-ahead-log record and the snapshot
// body. Table-driven, byte-at-a-time: durability writes are dominated by
// fsync, not checksumming, so simplicity wins over a sliced variant.

#ifndef REL_BASE_CRC32_H_
#define REL_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rel {

/// CRC of `data`, optionally continuing from a previous crc (pass the prior
/// return value to checksum data arriving in pieces).
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

inline uint32_t Crc32(std::string_view s, uint32_t crc = 0) {
  return Crc32(s.data(), s.size(), crc);
}

}  // namespace rel

#endif  // REL_BASE_CRC32_H_
