// String interning.
//
// Rel values of kind String and Entity hold an interned symbol id instead of
// an owned string, which makes Value trivially copyable and makes equality
// and hashing O(1). Ordering of symbols is by string content (via Compare),
// so relation iteration order is stable and human-sensible.

#ifndef REL_BASE_INTERNER_H_
#define REL_BASE_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rel {

using Symbol = uint32_t;

/// A process-wide string pool. Thread-compatible (no internal locking); the
/// engine is single-threaded by design, mirroring one Rel transaction.
class Interner {
 public:
  /// Returns the singleton used by all Values.
  static Interner& Global();

  /// Interns `s`, returning its stable symbol id.
  Symbol Intern(std::string_view s);

  /// Returns the string for a previously interned symbol.
  const std::string& Lookup(Symbol sym) const;

  /// Three-way comparison of two symbols by string content.
  int Compare(Symbol a, Symbol b) const;

  /// Number of distinct strings interned so far.
  size_t size() const { return strings_.size(); }

 private:
  // deque: growing never moves existing strings, so the string_view keys in
  // index_ stay valid.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace rel

#endif  // REL_BASE_INTERNER_H_
