// String interning.
//
// Rel values of kind String and Entity hold an interned symbol id instead of
// an owned string, which makes Value trivially copyable and makes equality
// and hashing O(1). Ordering of symbols is by string content (via Compare),
// so relation iteration order is stable and human-sensible.

#ifndef REL_BASE_INTERNER_H_
#define REL_BASE_INTERNER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rel {

using Symbol = uint32_t;

/// A process-wide string pool. Internally synchronized so Values can be
/// created, compared and hashed from evaluator worker threads (the parallel
/// Datalog rounds and the engine's parallel constraint checks) — and the
/// read side is **lock-free**: symbols live in a two-level chunk table with
/// a preallocated spine, a new symbol's string is fully constructed before
/// the published count advances (release/acquire), and strings are never
/// moved or erased afterwards. Only Intern takes the mutex, and interning
/// is parse-time rare while Compare/Lookup sit on sort/probe hot paths.
/// Returned string references stay valid forever.
class Interner {
 public:
  Interner();
  ~Interner();

  /// Returns the singleton used by all Values.
  static Interner& Global();

  /// Interns `s`, returning its stable symbol id.
  Symbol Intern(std::string_view s);

  /// Returns the string for a previously interned symbol. Lock-free.
  const std::string& Lookup(Symbol sym) const;

  /// Three-way comparison of two symbols by string content. Lock-free.
  int Compare(Symbol a, Symbol b) const;

  /// Number of distinct strings interned so far.
  size_t size() const { return published_.load(std::memory_order_acquire); }

 private:
  // 16384 chunks x 4096 strings = 67M distinct symbols (128KB spine,
  // chunks allocated on demand); the spine is a fixed array of atomic
  // chunk pointers so readers never chase a relocatable structure (the
  // failure mode of deque/vector storage). Exhausting the bound throws
  // kInternal from Intern — raise kMaxChunks if a workload ever has more
  // distinct strings than that (Symbol itself allows 4.29G).
  static constexpr size_t kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = 16384;

  const std::string& At(Symbol sym) const {
    return chunks_[sym >> kChunkBits].load(std::memory_order_acquire)
        [sym & (kChunkSize - 1)];
  }

  std::mutex mu_;  // serializes Intern only
  std::array<std::atomic<std::string*>, kMaxChunks> chunks_{};
  std::atomic<size_t> published_{0};
  // Keys are views into chunk storage (stable); guarded by mu_.
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace rel

#endif  // REL_BASE_INTERNER_H_
