#include "base/interner.h"

#include "base/error.h"

namespace rel {

Interner& Interner::Global() {
  static Interner* interner = new Interner();
  return *interner;
}

Symbol Interner::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) {
    return it->second;
  }
  Symbol sym = static_cast<Symbol>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), sym);
  return sym;
}

const std::string& Interner::Lookup(Symbol sym) const {
  InternalCheck(sym < strings_.size(), "symbol out of range");
  return strings_[sym];
}

int Interner::Compare(Symbol a, Symbol b) const {
  if (a == b) return 0;
  return Lookup(a).compare(Lookup(b)) < 0 ? -1 : 1;
}

}  // namespace rel
