#include "base/interner.h"

#include "base/error.h"

namespace rel {

Interner::Interner() = default;

Interner::~Interner() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

Interner& Interner::Global() {
  static Interner* interner = new Interner();
  return *interner;
}

Symbol Interner::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;

  size_t sym = published_.load(std::memory_order_relaxed);
  InternalCheck(sym < kMaxChunks * kChunkSize, "interner capacity exhausted");
  size_t chunk = sym >> kChunkBits;
  std::string* storage = chunks_[chunk].load(std::memory_order_relaxed);
  if (storage == nullptr) {
    storage = new std::string[kChunkSize];
    chunks_[chunk].store(storage, std::memory_order_release);
  }
  std::string& slot = storage[sym & (kChunkSize - 1)];
  slot.assign(s.data(), s.size());
  // Publish after the string is fully constructed: a reader that passes the
  // acquire bound below sees the completed element.
  published_.store(sym + 1, std::memory_order_release);
  index_.emplace(std::string_view(slot), static_cast<Symbol>(sym));
  return static_cast<Symbol>(sym);
}

const std::string& Interner::Lookup(Symbol sym) const {
  InternalCheck(sym < published_.load(std::memory_order_acquire),
                "symbol out of range");
  return At(sym);
}

int Interner::Compare(Symbol a, Symbol b) const {
  if (a == b) return 0;
  size_t bound = published_.load(std::memory_order_acquire);
  InternalCheck(a < bound && b < bound, "symbol out of range");
  return At(a).compare(At(b)) < 0 ? -1 : 1;
}

}  // namespace rel
