#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "server/protocol.h"

namespace rel {
namespace server {

namespace {

/// Writes all of `data` (+ newline) to `fd`; false on a broken connection.
/// MSG_NOSIGNAL turns a write-to-closed-peer into EPIPE instead of SIGPIPE.
bool WriteLine(int fd, const std::string& data) {
  std::string out = data + "\n";
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

LineServer::LineServer(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

LineServer::~LineServer() { Stop(); }

Status LineServer::Start() {
  if (running_) {
    return Status::Error(ErrorKind::kTransaction, "server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status s = Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  stopping_ = false;
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  connections_ = std::make_unique<ThreadPool::TaskGroup>(pool_.get());
  acceptor_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return Status::Ok();
}

void LineServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or failed
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(clients_mu_);
      clients_.insert(fd);
    }
    connections_->Run([this, fd] { ServeConnection(fd); });
  }
}

void LineServer::ServeConnection(int fd) {
  SessionHandler handler(engine_);
  std::string buffer;
  char chunk[4096];
  while (!handler.closed() && !stopping_) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client hung up (or Stop shut the socket down)
    buffer.append(chunk, static_cast<size_t>(n));
    size_t eol;
    while (!handler.closed() && (eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!WriteLine(fd, handler.Handle(line))) {
        buffer.clear();
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    clients_.erase(fd);
  }
  ::close(fd);
}

void LineServer::Stop() {
  if (!running_) return;
  stopping_ = true;
  // Unblock the acceptor's accept() with shutdown, and only close the fd
  // after the join: closing (or reassigning listen_fd_) while the acceptor
  // still reads it would race, and a concurrently-recycled fd number could
  // even make it accept on someone else's socket.
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (int fd : clients_) ::shutdown(fd, SHUT_RDWR);
  }
  // The Stop() caller is the pool's single outside helper: it drains any
  // connection tasks still queued (their recv()s fail instantly now).
  connections_->Wait();
  connections_.reset();
  pool_.reset();
  running_ = false;
}

}  // namespace server
}  // namespace rel
