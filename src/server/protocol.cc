#include "server/protocol.h"

#include <utility>

#include "base/error.h"

namespace rel {
namespace server {

std::string EscapeLine(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeLine(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char next = s[i + 1];
      if (next == 'n') {
        out += '\n';
        ++i;
        continue;
      }
      if (next == '\\') {
        out += '\\';
        ++i;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

namespace {

/// Splits "command payload" at the first space; payload may be empty.
void SplitCommand(const std::string& line, std::string* command,
                  std::string* payload) {
  size_t space = line.find(' ');
  if (space == std::string::npos) {
    *command = line;
    payload->clear();
    return;
  }
  *command = line.substr(0, space);
  *payload = line.substr(space + 1);
}

std::string Ok(const std::string& detail) {
  return detail.empty() ? "ok" : "ok " + EscapeLine(detail);
}

std::string Err(const char* kind, const std::string& message) {
  return std::string("err ") + kind + ": " + EscapeLine(message);
}

}  // namespace

SessionHandler::SessionHandler(Engine* engine)
    : session_(engine->OpenSession()) {}

std::string SessionHandler::Handle(const std::string& line) {
  std::string command, payload;
  SplitCommand(line, &command, &payload);
  payload = UnescapeLine(payload);
  try {
    if (command == "ping") return Ok("pong");
    if (command == "quit") {
      closed_ = true;
      return Ok("bye");
    }
    if (command == "eval") return Ok(session_->Eval(payload).ToString());
    if (command == "query") return Ok(session_->Query(payload).ToString());
    if (command == "exec") {
      TxnResult txn = session_->Exec(payload);
      std::string detail = "+" + std::to_string(txn.inserted) + " -" +
                           std::to_string(txn.deleted) + " v" +
                           std::to_string(txn.snapshot_version);
      if (!txn.output.empty()) detail += " " + txn.output.ToString();
      return Ok(detail);
    }
    if (command == "def") {
      session_->Define(payload);
      return Ok("defined, " +
                std::to_string(session_->snapshot().rules->size()) + " rules");
    }
    if (command == "base") return Ok(session_->Base(payload).ToString());
    if (command == "refresh") {
      session_->Refresh();
      return Ok("v" + std::to_string(session_->snapshot_version()));
    }
    if (command == "snap") {
      const Snapshot& snap = session_->snapshot();
      return Ok("v" + std::to_string(snap.version()) + " rules=" +
                std::to_string(snap.rules->size()) + " txn=" +
                std::to_string(snap.txn_id));
    }
    return Err("proto", "unknown command '" + command + "'");
  } catch (const RelError& e) {
    // what() is already "<kind name>: <message>".
    return "err " + EscapeLine(e.what());
  } catch (const std::exception& e) {
    return Err("internal", e.what());
  }
}

}  // namespace server
}  // namespace rel
