// LineServer: a TCP server speaking the Rel line protocol (protocol.h),
// admitting N concurrent client sessions over the shared thread pool.
//
// Architecture: one acceptor thread blocks in accept(); each accepted
// connection becomes a task on a ThreadPool of `num_workers` workers, so at
// most `num_workers` clients are served concurrently (further accepted
// connections queue until a worker frees up). Every connection owns a
// SessionHandler — and through it a Session pinned to an engine snapshot —
// so readers never block each other or the writer; writes serialize in the
// engine's commit pipeline.
//
// Connection tasks block in recv() for their client's next line. That is
// what bounds concurrency to the worker count: the pool's workers are the
// serving capacity, exactly the "N concurrent client sessions over the
// thread pool" contract. Stop() shuts down the listener and every client
// socket (unblocking the recv()s), then drains the pool.

#ifndef REL_SERVER_SERVER_H_
#define REL_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "base/error.h"
#include "base/thread_pool.h"
#include "core/engine.h"

namespace rel {
namespace server {

struct ServerOptions {
  /// Listen address. The default serves loopback only; a server exposed
  /// beyond that needs transport security this layer does not provide.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  int port = 0;
  /// Worker threads = maximum concurrently-served client sessions.
  int num_workers = 4;
  /// listen(2) backlog for connections waiting to be accepted.
  int backlog = 16;
};

class LineServer {
 public:
  LineServer(Engine* engine, ServerOptions options = {});
  /// Stops the server if still running.
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds, listens, and starts accepting. Non-blocking: serving happens on
  /// the acceptor thread + pool. Returns a non-ok status if the socket
  /// cannot be set up (port in use, sandboxed environment, ...).
  Status Start();

  /// Shuts down the listener and all client connections, waits for every
  /// in-flight request to finish, and joins the threads. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }

  /// True between a successful Start() and Stop().
  bool running() const { return running_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Engine* engine_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool::TaskGroup> connections_;
  std::thread acceptor_;
  /// Open client sockets, so Stop() can unblock their readers.
  std::mutex clients_mu_;
  std::set<int> clients_;
};

}  // namespace server
}  // namespace rel

#endif  // REL_SERVER_SERVER_H_
