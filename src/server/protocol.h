// The Rel line protocol: one request line in, one response line out.
//
// SessionHandler is the transport-free half of the server (src/server/
// server.h provides the TCP half; examples/repl.cpp drives the same handler
// over stdin). Each handler owns one Session pinned to a snapshot of the
// shared Engine, so concurrent handlers get snapshot isolation for free —
// see core/session.h.
//
// Requests:   <command> [payload]      Responses:  ok [detail]
//                                                  err <kind>: <message>
//
//   eval <expr>       evaluate an expression against the pinned snapshot
//   query <rules>     run rules read-only; respond with `output`
//   exec <rules>      run a full transaction through the commit pipeline;
//                     respond with "+I -D v<version>" plus `output` if any
//   def <rules>       install persistent rules engine-wide
//   base <name>       dump a base relation of the pinned snapshot
//   refresh           re-pin the newest published snapshot
//   snap              report the pinned snapshot (version, rules, txn id)
//   ping              liveness check
//   quit              close the session
//
// Since the protocol is line-oriented, multi-line Rel source is sent with
// `\n` escapes in the payload (and `\\` for a literal backslash); response
// details are escaped the same way. Everything else is verbatim UTF-8.

#ifndef REL_SERVER_PROTOCOL_H_
#define REL_SERVER_PROTOCOL_H_

#include <memory>
#include <string>

#include "core/engine.h"

namespace rel {
namespace server {

/// Escapes newlines and backslashes so `s` fits one protocol line.
std::string EscapeLine(const std::string& s);

/// Inverse of EscapeLine (unknown escapes pass through verbatim).
std::string UnescapeLine(const std::string& s);

/// One client's protocol state: a Session plus the request dispatcher.
/// Single-threaded, like the Session it owns; the server runs one handler
/// per connection.
class SessionHandler {
 public:
  explicit SessionHandler(Engine* engine);

  /// Handles one request line (no trailing newline) and returns the
  /// response line (no trailing newline). Never throws: engine errors
  /// become `err` responses.
  std::string Handle(const std::string& line);

  /// True once the client sent `quit`; the transport should close.
  bool closed() const { return closed_; }

  Session& session() { return *session_; }

 private:
  std::unique_ptr<Session> session_;
  bool closed_ = false;
};

}  // namespace server
}  // namespace rel

#endif  // REL_SERVER_PROTOCOL_H_
