// Relation: a set of tuples, possibly of mixed arity (Rels1 in Addendum A).
//
// Storage is per-arity: a hash set for O(1) membership and insertion, plus a
// lazily maintained sorted vector used for deterministic iteration and for
// prefix range scans (the access path behind partial application R[a,b]).
//
// Mixed arity is a first-class feature: the paper's `Prefix` and `Perm`
// examples (Section 4.1) produce relations whose tuples have many arities.

#ifndef REL_DATA_RELATION_H_
#define REL_DATA_RELATION_H_

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/tuple.h"

namespace rel {

/// A (first-order) relation: a finite set of tuples of mixed arity.
class Relation {
 public:
  Relation() = default;

  /// The relation {<>} that encodes boolean TRUE (Section 4.3).
  static Relation True();
  /// The empty relation {} that encodes boolean FALSE.
  static Relation False();
  /// A relation holding a single tuple.
  static Relation Singleton(Tuple t);
  /// A relation built from a list of tuples (duplicates collapse).
  static Relation FromTuples(const std::vector<Tuple>& tuples);

  /// Inserts `t`; returns true if it was not already present.
  bool Insert(Tuple t);
  /// Inserts every tuple of `other`; returns true if anything was added.
  bool InsertAll(const Relation& other);
  /// Removes `t`; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True iff this relation is {<>} or {} — i.e. encodes a boolean.
  bool IsBoolean() const;
  /// True iff this relation contains the empty tuple (boolean TRUE).
  bool AsBool() const;

  /// All arities that occur in the relation, ascending.
  std::vector<size_t> Arities() const;

  /// All tuples of a given arity in sorted order (empty if none).
  const std::vector<Tuple>& TuplesOfArity(size_t arity) const;

  /// All tuples, sorted by (arity, lexicographic). Deterministic.
  std::vector<Tuple> SortedTuples() const;

  /// Invokes fn(tuple) for every tuple, without copying and without forcing
  /// the sorted view. Iteration order is unspecified (hash-set order); use
  /// SortedTuples() when determinism matters.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [arity, block] : blocks_) {
      (void)arity;
      for (const Tuple& t : block.set) fn(t);
    }
  }

  /// Like ForEach but restricted to one arity. Unlike TuplesOfArity this
  /// does not force (or sort) the sorted view.
  template <typename Fn>
  void ForEachOfArity(size_t arity, Fn&& fn) const {
    auto it = blocks_.find(arity);
    if (it == blocks_.end()) return;
    for (const Tuple& t : it->second.set) fn(t);
  }

  /// Tuples of arity >= prefix.arity() that start with `prefix`, i.e. the
  /// matches used by partial application. The callback receives each full
  /// matching tuple; return false from it to stop early.
  template <typename Fn>
  void ScanPrefix(const Tuple& prefix, Fn&& fn) const;

  /// The suffixes of tuples matching `prefix` (partial application R[...]).
  Relation Suffixes(const Tuple& prefix) const;

  /// Set algebra (used by builtins and tests).
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Minus(const Relation& other) const;

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Order-insensitive content hash, used as memo key for second-order
  /// relation arguments.
  size_t Hash() const;

  /// {(1, 2); (3, 4)} — sorted, deterministic.
  std::string ToString() const;

 private:
  struct ArityBlock {
    std::unordered_set<Tuple> set;
    // Sorted view, rebuilt on demand; valid iff sorted_valid.
    mutable std::vector<Tuple> sorted;
    mutable bool sorted_valid = true;

    const std::vector<Tuple>& Sorted() const;
  };

  std::map<size_t, ArityBlock> blocks_;
  size_t size_ = 0;
};

template <typename Fn>
void Relation::ScanPrefix(const Tuple& prefix, Fn&& fn) const {
  for (const auto& [arity, block] : blocks_) {
    if (arity < prefix.arity()) continue;
    const std::vector<Tuple>& sorted = block.Sorted();
    // Binary search for the first tuple >= prefix; all matches are a
    // contiguous run because order is lexicographic.
    auto it = std::lower_bound(sorted.begin(), sorted.end(), prefix);
    for (; it != sorted.end() && it->StartsWith(prefix); ++it) {
      if (!fn(*it)) return;
    }
  }
}

}  // namespace rel

#endif  // REL_DATA_RELATION_H_
