// Relation: a set of tuples, possibly of mixed arity (Rels1 in Addendum A).
//
// Storage is column-major: each arity that occurs in the relation owns a
// ColumnArena — one flat std::vector<Value> per column, an open-addressing
// hash table over row *indices* for O(1) dedup/membership (no materialized
// tuples), and a lazily maintained sorted row-index view used for
// deterministic iteration and for prefix range scans (the access path behind
// partial application R[a,b]). Rows are handed out as lightweight TupleRef
// views; see src/data/README.md for the layout and validity invariants.
//
// Mixed arity is a first-class feature: the paper's `Prefix` and `Perm`
// examples (Section 4.1) produce relations whose tuples have many arities.

#ifndef REL_DATA_RELATION_H_
#define REL_DATA_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/tuple.h"

namespace rel {

/// Column-major storage for the fixed-arity slice of a relation: `arity`
/// parallel column vectors, per-row cached content hashes, an open-addressing
/// row-index table for dedup, and lazy sorted views. Append-only except for
/// Erase (which swaps the last row into the hole, renumbering that one row).
class ColumnArena {
 public:
  explicit ColumnArena(size_t arity);
  // Copies are distinct storage and get a fresh id. Moves are deleted: a
  // defaulted move would leave the source with a stale size and a duplicate
  // id, and no container here ever relocates an arena (std::map nodes are
  // stable).
  ColumnArena(const ColumnArena& other);
  ColumnArena& operator=(const ColumnArena& other);
  ColumnArena(ColumnArena&&) = delete;
  ColumnArena& operator=(ColumnArena&&) = delete;

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  /// Bumped on every successful mutation; consumers (index caches) use it to
  /// detect staleness — unlike a size comparison it also catches erase+insert
  /// sequences that return to a previous size.
  uint64_t version() const { return version_; }
  /// Process-unique, never reused. Caches key on (id, version) rather than
  /// the arena address: a new arena allocated where a freed one lived (the
  /// erase-all-then-reinsert path) must not alias its predecessor's entries.
  uint64_t id() const { return id_; }

  const Value& At(size_t row, size_t col) const { return columns_[col][row]; }
  const std::vector<Value>& Column(size_t col) const { return columns_[col]; }
  TupleRef Row(size_t row) const {
    return TupleRef(columns_.data(), arity_, row);
  }
  /// The cached content hash of a row (equals Tuple::Hash of the row).
  size_t RowHash(size_t row) const { return hashes_[row]; }

  /// Inserts the row `vals[0..arity)`; returns false if already present.
  bool Insert(const Value* vals);
  bool Insert(const TupleRef& ref);
  /// Inserts row `row` of `src` (same arity); reuses src's cached hash.
  bool InsertRowOf(const ColumnArena& src, size_t row);

  bool Contains(const Value* vals) const;
  bool Contains(const TupleRef& ref) const;
  bool ContainsRowOf(const ColumnArena& src, size_t row) const;

  /// Removes the row equal to `vals`, swapping the last row into its slot
  /// (row indices of the moved row change; all views are invalidated).
  bool Erase(const Value* vals);

  /// Row indices in lexicographic tuple order. Rebuilt lazily; the returned
  /// vector is stable across Insert (stale but safe), not across Erase.
  const std::vector<uint32_t>& SortedRows() const;

  /// Materialized sorted tuples — the compatibility view for row-oriented
  /// consumers (scan-strategy ablation baselines, kg layer, tests). Built
  /// lazily; the columnar fast paths never force it.
  const std::vector<Tuple>& SortedTuples() const;

  /// Invokes fn(TupleRef) for every row present at entry. The row count is
  /// snapshotted, and appends never move existing rows, so inserting into
  /// this arena from `fn` is safe (new rows are not visited this pass).
  ///
  /// Erasing from `fn` is tolerated but lossy *as long as this arena stays
  /// alive*: Erase swaps the last row into the hole, so the swapped row may
  /// be skipped (if the hole was already visited) or seen under its new
  /// index, and the loop re-clamps to the shrunken row count instead of
  /// handing out stale row indices past the end. Beware the owner, though:
  /// Relation destroys an arena the moment it empties, so erasing the last
  /// remaining row of this arena through a Relation wrapper frees the
  /// object mid-loop — see Relation::ForEach for that hard exception.
  /// Exactly-once visitation holds only when `fn` does not erase — pinned
  /// by tests/data/columnar_test.cc.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    const size_t n = num_rows_;
    for (size_t r = 0; r < n && r < num_rows_; ++r) fn(Row(r));
  }

  /// Like ForEachRow restricted to rows [begin, min(end, size())). Row
  /// indices are stable under append, so disjoint ranges partition the
  /// arena exactly — the parallel evaluator splits driver scans this way,
  /// one range per task, while the arena itself stays read-only. The same
  /// erase re-clamp as ForEachRow applies (a shrinking arena truncates the
  /// range rather than yielding dangling rows), with the same owner caveat:
  /// an erase that empties the arena destroys it mid-loop.
  template <typename Fn>
  void ForEachRowRange(size_t begin, size_t end, Fn&& fn) const {
    const size_t n = std::min(end, num_rows_);
    for (size_t r = begin; r < n && r < num_rows_; ++r) fn(Row(r));
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;
  static constexpr uint32_t kTombstone = 0xfffffffeu;
  static constexpr size_t kNoRow = static_cast<size_t>(-1);

  // True iff row `row` equals the candidate whose value at column c is
  // get(c) — the single definition of row equality.
  template <typename GetFn>
  bool RowEquals(size_t row, GetFn&& get) const;
  // Returns the index of the row whose hash is `h` and whose columns satisfy
  // eq(row), or kNoRow. `eq` is only called when hashes match.
  template <typename EqFn>
  size_t FindRow(size_t h, EqFn&& eq) const;
  // Appends a row (values provided by get(col)) and links it into the table.
  template <typename GetFn>
  void AppendRow(size_t h, GetFn&& get);
  template <typename GetFn>
  bool InsertImpl(size_t h, GetFn&& get);
  bool RowEqualsSpan(size_t row, const Value* vals) const;
  void MaybeGrowTable();
  void Rehash(size_t min_slots);
  // The slot holding row index `row` (which must be present).
  size_t SlotOf(size_t row) const;
  void Invalidate();

  static uint64_t NextId();

  size_t arity_ = 0;
  size_t num_rows_ = 0;
  uint64_t version_ = 0;
  uint64_t id_ = 0;
  std::vector<std::vector<Value>> columns_;  // columns_[c][r]; size() == arity_
  std::vector<size_t> hashes_;               // per-row content hash
  std::vector<uint32_t> slots_;              // open addressing; power of two
  size_t tombstones_ = 0;

  // Lazy views. Invalidation only flips the flags — the vectors keep their
  // previous (stale) contents so iteration in flight during an Insert stays
  // memory-safe.
  mutable std::vector<uint32_t> sorted_rows_;
  mutable bool sorted_valid_ = true;
  mutable std::vector<Tuple> sorted_tuples_;
  mutable bool tuples_valid_ = false;
};

/// A (first-order) relation: a finite set of tuples of mixed arity.
class Relation {
 public:
  Relation() = default;

  /// The relation {<>} that encodes boolean TRUE (Section 4.3).
  static Relation True();
  /// The empty relation {} that encodes boolean FALSE.
  static Relation False();
  /// A relation holding a single tuple.
  static Relation Singleton(Tuple t);
  /// A relation built from a list of tuples (duplicates collapse).
  static Relation FromTuples(const std::vector<Tuple>& tuples);

  /// Inserts `t`; returns true if it was not already present.
  bool Insert(const Tuple& t);
  /// Inserts the tuple `vals[0..arity)` without materializing a Tuple — the
  /// zero-allocation emit path of the Datalog evaluator.
  bool Insert(const Value* vals, size_t arity);
  bool Insert(const TupleRef& ref);
  /// Inserts every tuple of `other`; returns true if anything was added.
  bool InsertAll(const Relation& other);
  /// Removes `t`; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;
  bool Contains(const Value* vals, size_t arity) const;
  bool Contains(const TupleRef& ref) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True iff this relation is {<>} or {} — i.e. encodes a boolean.
  bool IsBoolean() const;
  /// True iff this relation contains the empty tuple (boolean TRUE).
  bool AsBool() const;

  /// All arities that occur in the relation, ascending.
  std::vector<size_t> Arities() const;

  /// Number of tuples of one arity, without forcing any view.
  size_t CountOfArity(size_t arity) const;

  /// The column arena backing one arity, or nullptr if that arity is absent.
  /// The arena address is stable while the arity remains populated and the
  /// Relation is neither copied, moved-from, nor destroyed.
  const ColumnArena* ArenaOfArity(size_t arity) const;

  /// All tuples of a given arity in sorted order (empty if none). This is
  /// the materialized compatibility view; columnar consumers should use
  /// ArenaOfArity / ForEachOfArity instead.
  const std::vector<Tuple>& TuplesOfArity(size_t arity) const;

  /// All tuples, sorted by (arity, lexicographic). Deterministic.
  std::vector<Tuple> SortedTuples() const;

  /// Invokes fn(TupleRef) for every tuple, without copying and without
  /// forcing the sorted view. Iteration order is unspecified (insertion
  /// order per arity); use SortedTuples() when determinism matters.
  /// Inserting into this relation from `fn` is safe: rows appended to an
  /// already-visited or in-progress arity are not visited this pass (the
  /// per-arity row count is snapshotted), though a brand-new arity created
  /// mid-iteration may be. Erasing from `fn` follows the ColumnArena
  /// contract (memory-safe, lossy visitation) with one hard exception:
  /// erasing the LAST tuple of the arity being iterated destroys that
  /// arity's arena (the blocks_ map holds only non-empty arenas — AsBool
  /// and operator== rely on that) and is therefore unsupported while any
  /// iteration over it is in flight. Pinned by tests/data/columnar_test.cc.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [arity, arena] : blocks_) {
      (void)arity;
      arena.ForEachRow(fn);
    }
  }

  /// Like ForEach but restricted to one arity. Same insert-while-iterating
  /// guarantee; does not force (or sort) any view.
  template <typename Fn>
  void ForEachOfArity(size_t arity, Fn&& fn) const {
    auto it = blocks_.find(arity);
    if (it == blocks_.end()) return;
    it->second.ForEachRow(fn);
  }

  /// ForEachOfArity over the row-index range [begin, end) of that arity's
  /// arena — the chunked-driver access path of the parallel evaluator.
  /// Purely read-only: does not force any lazy view, so concurrent calls
  /// on a frozen relation are safe. If `fn` erases (single-threaded use
  /// only), the swap-last erase renumbers the moved row and the range
  /// truncates to the shrunken arena; see ColumnArena::ForEachRow for the
  /// exact guarantee and ForEach above for the hard exception — erasing
  /// the last remaining tuple of the iterated arity destroys its arena.
  template <typename Fn>
  void ForEachOfArityRange(size_t arity, size_t begin, size_t end,
                           Fn&& fn) const {
    auto it = blocks_.find(arity);
    if (it == blocks_.end()) return;
    it->second.ForEachRowRange(begin, end, fn);
  }

  /// Tuples of arity >= prefix.arity() that start with `prefix`, i.e. the
  /// matches used by partial application. The callback receives each full
  /// matching row as a TupleRef; return false from it to stop early.
  template <typename Fn>
  void ScanPrefix(const Tuple& prefix, Fn&& fn) const;

  /// The suffixes of tuples matching `prefix` (partial application R[...]).
  Relation Suffixes(const Tuple& prefix) const;

  /// Set algebra (used by builtins and tests).
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Minus(const Relation& other) const;

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Order-insensitive content hash, used as memo key for second-order
  /// relation arguments.
  size_t Hash() const;

  /// {(1, 2); (3, 4)} — sorted, deterministic.
  std::string ToString() const;

 private:
  ColumnArena& ArenaFor(size_t arity);
  /// Inserts row `row` of `src` into this relation's arena of the same
  /// arity, keeping size_ in sync — the one place that invariant lives for
  /// arena-to-arena copies.
  bool InsertRowFrom(const ColumnArena& src, size_t row);

  std::map<size_t, ColumnArena> blocks_;
  size_t size_ = 0;
};

template <typename Fn>
void Relation::ScanPrefix(const Tuple& prefix, Fn&& fn) const {
  const size_t k = prefix.arity();
  const Value* pvals = prefix.values().data();
  for (const auto& [arity, arena] : blocks_) {
    if (arity < k) continue;
    const std::vector<uint32_t>& order = arena.SortedRows();
    // Lexicographic compare of the row's first k columns against the prefix
    // (no arity tie-break: every row in this block extends the prefix).
    auto cmp_prefix = [&](uint32_t row) {
      for (size_t i = 0; i < k; ++i) {
        int c = arena.At(row, i).Compare(pvals[i]);
        if (c != 0) return c;
      }
      return 0;
    };
    // Matches form a contiguous run; two binary searches bound it.
    size_t lo = 0;
    size_t hi = order.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (cmp_prefix(order[mid]) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    size_t end_lo = lo;
    size_t end_hi = order.size();
    while (end_lo < end_hi) {
      size_t mid = end_lo + (end_hi - end_lo) / 2;
      if (cmp_prefix(order[mid]) <= 0) {
        end_lo = mid + 1;
      } else {
        end_hi = mid;
      }
    }
    if (lo == end_lo) continue;
    // Snapshot the run before calling out: a callback that inserts and then
    // touches a sorted view re-sorts sorted_rows_ in place, which would
    // shift the run under a live iteration over `order`. Typical partial-
    // application runs are short, so a stack buffer avoids an allocation on
    // the solver's hot path.
    const size_t count = end_lo - lo;
    uint32_t small[64];
    std::vector<uint32_t> big;
    const uint32_t* run;
    if (count <= 64) {
      std::copy(order.begin() + lo, order.begin() + end_lo, small);
      run = small;
    } else {
      big.assign(order.begin() + lo, order.begin() + end_lo);
      run = big.data();
    }
    for (size_t i = 0; i < count; ++i) {
      if (!fn(arena.Row(run[i]))) return;
    }
  }
}

}  // namespace rel

#endif  // REL_DATA_RELATION_H_
