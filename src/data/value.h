// Value: the atomic data item of the Rel data model.
//
// Following the paper's "things, not strings" discussion (Section 2), values
// are either primitive (Int, Float, String) or Entity: an internal identifier
// that is unique across the whole database. Entities carry the concept they
// belong to so the GNF layer can enforce the unique-identifier property.
//
// Values are small (16 bytes), trivially copyable, totally ordered and
// hashable, which is what the relation storage layer is built on.

#ifndef REL_DATA_VALUE_H_
#define REL_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/interner.h"

namespace rel {

/// Discriminates Value. The order of enumerators defines the cross-kind
/// ordering used by relation storage (Int < Float < String < Entity).
enum class ValueKind : uint8_t {
  kInt,
  kFloat,
  kString,
  kEntity,
};

/// Returns "Int", "Float", "String" or "Entity".
const char* ValueKindName(ValueKind kind);

/// An immutable atomic value.
class Value {
 public:
  /// Default-constructs Int 0 (required by containers; not otherwise used).
  Value() : kind_(ValueKind::kInt), int_(0) {}

  static Value Int(int64_t v);
  static Value Float(double v);
  static Value String(std::string_view s);
  /// An entity identifier `id` belonging to `concept` (both interned).
  static Value Entity(std::string_view concept_name, std::string_view id);

  ValueKind kind() const { return kind_; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_float() const { return kind_ == ValueKind::kFloat; }
  bool is_string() const { return kind_ == ValueKind::kString; }
  bool is_entity() const { return kind_ == ValueKind::kEntity; }
  bool is_number() const { return is_int() || is_float(); }

  /// Requires is_int().
  int64_t AsInt() const;
  /// Requires is_float().
  double AsFloat() const;
  /// Numeric value as double. Requires is_number().
  double AsDouble() const;
  /// Requires is_string().
  const std::string& AsString() const;
  /// Requires is_entity(); the local identifier part.
  const std::string& EntityId() const;
  /// Requires is_entity(); the concept the entity belongs to.
  const std::string& EntityConcept() const;

  /// Strict total order: by kind, then by content. This is the storage
  /// order; it intentionally does NOT equate Int 1 with Float 1.0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Numeric-aware comparison used by the `=`, `<`, ... builtins: Int 1 and
  /// Float 1.0 compare equal; values of incomparable kinds return kUnordered.
  enum class Ordering { kLess, kEqual, kGreater, kUnordered };
  Ordering NumericCompare(const Value& other) const;

  size_t Hash() const;

  /// Rel literal syntax: 42, 3.5, "text", concept:"id" for entities.
  std::string ToString() const;

 private:
  ValueKind kind_;
  union {
    int64_t int_;
    double float_;
    Symbol sym_;  // kString: the string; kEntity: unused with pair_ below
  };
  // For entities: interned concept and id. For other kinds unused.
  Symbol concept_ = 0;
};

}  // namespace rel

template <>
struct std::hash<rel::Value> {
  size_t operator()(const rel::Value& v) const { return v.Hash(); }
};

#endif  // REL_DATA_VALUE_H_
