// Binary serialization of the data model (Value, Tuple, ColumnArena-backed
// Relation, Database) for the durability layer.
//
// Everything is little-endian and fixed-width; floats round-trip by bit
// pattern (NaN payloads — the source of kUnordered comparisons — survive
// exactly). Strings and entities are stored by *content*, never by Symbol
// id: symbol ids are process-local interner handles, so a snapshot written
// by one process must re-intern on load. Two string encodings exist:
//
//   * inline (length + bytes) — used by WAL records, which are small and
//     self-contained;
//   * table-referenced (u32 index into a per-snapshot string table) — used
//     by snapshots, where the same interned strings recur across millions
//     of rows. The table is built on the fly during encoding (first use
//     assigns the next index) and written ahead of the body.
//
// Decoders are defensive: every read is bounds-checked and malformed input
// returns false rather than crashing, because the bytes come from disk and
// the storage layer treats decode failure as corruption to degrade through.

#ifndef REL_DATA_SERIALIZE_H_
#define REL_DATA_SERIALIZE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "data/tuple.h"
#include "data/value.h"

namespace rel {

/// Appends fixed-width little-endian primitives to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(std::string_view s);

  std::string* out() { return out_; }

 private:
  std::string* out_;
};

/// Bounds-checked reads over a byte buffer. All readers return false on
/// truncated or malformed input and leave the cursor unspecified after a
/// failure (callers stop at the first false).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  /// View into the underlying buffer (valid while the buffer lives).
  bool Str(std::string_view* s);

  size_t pos() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Deduplicating string table for snapshot encoding: assigns dense ids in
/// first-use order. The keys view into the global Interner's stable storage.
class StringTable {
 public:
  /// The id for `s`, assigning the next one on first use.
  uint32_t IdFor(const std::string& s);

  /// Strings in id order.
  const std::vector<std::string_view>& strings() const { return strings_; }

 private:
  std::map<std::string_view, uint32_t> ids_;
  std::vector<std::string_view> strings_;
};

/// Encodes `v`. With `table` set, string/entity content is table-referenced;
/// otherwise it is inline.
void EncodeValue(ByteWriter* w, const Value& v, StringTable* table);

/// Decodes a value encoded by EncodeValue. `table` must mirror the encoding
/// side: the loaded string table for table-referenced input, nullptr for
/// inline input. Strings are re-interned into this process's Interner.
bool DecodeValue(ByteReader* r, const std::vector<std::string>* table,
                 Value* out);

/// u32 arity + values (inline or table-referenced per `table`).
void EncodeTuple(ByteWriter* w, const Tuple& t, StringTable* table);
bool DecodeTuple(ByteReader* r, const std::vector<std::string>* table,
                 Tuple* out);

/// Relation wire format: u32 arity-count, then per arity u32 arity, u64 row
/// count and the rows column-major (column 0 for every row, then column 1,
/// ...), rows in sorted order so equal relations encode byte-identically
/// regardless of insertion history.
void EncodeRelation(ByteWriter* w, const Relation& rel, StringTable* table);
bool DecodeRelation(ByteReader* r, const std::vector<std::string>* table,
                    Relation* out);

/// u32 relation count, then per relation an inline name + EncodeRelation.
void EncodeDatabase(ByteWriter* w, const Database& db, StringTable* table);
bool DecodeDatabase(ByteReader* r, const std::vector<std::string>* table,
                    Database* out);

}  // namespace rel

#endif  // REL_DATA_SERIALIZE_H_
