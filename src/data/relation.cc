#include "data/relation.h"

#include <algorithm>
#include <atomic>

#include "base/error.h"
#include "base/hash.h"

namespace rel {

namespace {

size_t HashSpan(const Value* vals, size_t n) {
  size_t seed = kTupleHashSeed;
  for (size_t i = 0; i < n; ++i) seed = HashCombine(seed, vals[i].Hash());
  return seed;
}

/// splitmix64 finalizer. Row hashes built over std::hash<int64_t> (identity
/// on common standard libraries) have strided low bits; mixing before the
/// power-of-two mask keeps linear-probe runs short.
size_t MixHash(size_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

// --- ColumnArena -------------------------------------------------------------

uint64_t ColumnArena::NextId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

ColumnArena::ColumnArena(size_t arity)
    : arity_(arity), id_(NextId()), columns_(arity) {}

ColumnArena::ColumnArena(const ColumnArena& other) : ColumnArena(other.arity_) {
  *this = other;
}

ColumnArena& ColumnArena::operator=(const ColumnArena& other) {
  if (this == &other) return *this;
  const uint64_t id = id_;  // keep this storage's identity
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  // Contents changed wholesale; stay ahead of any version a cache may have
  // recorded for this storage.
  version_ = std::max(version_, other.version_) + 1;
  columns_ = other.columns_;
  hashes_ = other.hashes_;
  slots_ = other.slots_;
  tombstones_ = other.tombstones_;
  sorted_rows_ = other.sorted_rows_;
  sorted_valid_ = other.sorted_valid_;
  sorted_tuples_ = other.sorted_tuples_;
  tuples_valid_ = other.tuples_valid_;
  id_ = id;
  return *this;
}

template <typename GetFn>
bool ColumnArena::RowEquals(size_t row, GetFn&& get) const {
  for (size_t c = 0; c < arity_; ++c) {
    if (columns_[c][row] != get(c)) return false;
  }
  return true;
}

bool ColumnArena::RowEqualsSpan(size_t row, const Value* vals) const {
  return RowEquals(row, [vals](size_t c) -> const Value& { return vals[c]; });
}

template <typename EqFn>
size_t ColumnArena::FindRow(size_t h, EqFn&& eq) const {
  if (slots_.empty()) return kNoRow;
  const size_t mask = slots_.size() - 1;
  for (size_t i = MixHash(h) & mask;; i = (i + 1) & mask) {
    uint32_t s = slots_[i];
    if (s == kEmptySlot) return kNoRow;
    if (s != kTombstone && hashes_[s] == h && eq(static_cast<size_t>(s))) {
      return s;
    }
  }
}

template <typename GetFn>
void ColumnArena::AppendRow(size_t h, GetFn&& get) {
  const uint32_t row = static_cast<uint32_t>(num_rows_);
  for (size_t c = 0; c < arity_; ++c) columns_[c].push_back(get(c));
  hashes_.push_back(h);
  ++num_rows_;
  const size_t mask = slots_.size() - 1;
  for (size_t i = MixHash(h) & mask;; i = (i + 1) & mask) {
    uint32_t s = slots_[i];
    if (s == kEmptySlot || s == kTombstone) {
      if (s == kTombstone) --tombstones_;
      slots_[i] = row;
      return;
    }
  }
}

template <typename GetFn>
bool ColumnArena::InsertImpl(size_t h, GetFn&& get) {
  MaybeGrowTable();
  size_t existing = FindRow(h, [&](size_t row) { return RowEquals(row, get); });
  if (existing != kNoRow) return false;
  AppendRow(h, get);
  ++version_;
  Invalidate();
  return true;
}

bool ColumnArena::Insert(const Value* vals) {
  return InsertImpl(HashSpan(vals, arity_),
                    [vals](size_t c) -> const Value& { return vals[c]; });
}

bool ColumnArena::Insert(const TupleRef& ref) {
  InternalCheck(ref.arity() == arity_, "arena insert arity mismatch");
  return InsertImpl(ref.Hash(),
                    [&ref](size_t c) -> const Value& { return ref[c]; });
}

bool ColumnArena::InsertRowOf(const ColumnArena& src, size_t row) {
  InternalCheck(src.arity_ == arity_, "arena insert arity mismatch");
  return InsertImpl(src.hashes_[row], [&src, row](size_t c) -> const Value& {
    return src.columns_[c][row];
  });
}

bool ColumnArena::Contains(const Value* vals) const {
  return FindRow(HashSpan(vals, arity_), [&](size_t row) {
           return RowEqualsSpan(row, vals);
         }) != kNoRow;
}

bool ColumnArena::Contains(const TupleRef& ref) const {
  InternalCheck(ref.arity() == arity_, "arena contains arity mismatch");
  return FindRow(ref.Hash(), [&](size_t r) {
           return RowEquals(r, [&ref](size_t c) -> const Value& { return ref[c]; });
         }) != kNoRow;
}

bool ColumnArena::ContainsRowOf(const ColumnArena& src, size_t row) const {
  return FindRow(src.hashes_[row], [&](size_t r) {
           return RowEquals(r, [&src, row](size_t c) -> const Value& {
             return src.columns_[c][row];
           });
         }) != kNoRow;
}

size_t ColumnArena::SlotOf(size_t row) const {
  const size_t mask = slots_.size() - 1;
  for (size_t i = MixHash(hashes_[row]) & mask;; i = (i + 1) & mask) {
    if (slots_[i] == row) return i;
    InternalCheck(slots_[i] != kEmptySlot, "arena table lost a row");
  }
}

bool ColumnArena::Erase(const Value* vals) {
  size_t h = HashSpan(vals, arity_);
  size_t row =
      FindRow(h, [&](size_t r) { return RowEqualsSpan(r, vals); });
  if (row == kNoRow) return false;
  slots_[SlotOf(row)] = kTombstone;
  ++tombstones_;
  const size_t last = num_rows_ - 1;
  if (row != last) {
    // Swap the last row into the hole and renumber its table entry.
    size_t last_slot = SlotOf(last);
    for (size_t c = 0; c < arity_; ++c) {
      columns_[c][row] = columns_[c][last];
    }
    hashes_[row] = hashes_[last];
    slots_[last_slot] = static_cast<uint32_t>(row);
  }
  for (size_t c = 0; c < arity_; ++c) columns_[c].pop_back();
  hashes_.pop_back();
  --num_rows_;
  ++version_;
  Invalidate();
  // Row indices moved; stale sorted views would dangle past the new end.
  sorted_rows_.clear();
  sorted_tuples_.clear();
  return true;
}

void ColumnArena::MaybeGrowTable() {
  // Keep occupancy (live rows + tombstones) at or below 3/4.
  if ((num_rows_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
    size_t want = 16;
    while (want < (num_rows_ + 1) * 2) want <<= 1;
    Rehash(want);
  }
}

void ColumnArena::Rehash(size_t min_slots) {
  slots_.assign(min_slots, kEmptySlot);
  tombstones_ = 0;
  const size_t mask = slots_.size() - 1;
  for (size_t row = 0; row < num_rows_; ++row) {
    for (size_t i = MixHash(hashes_[row]) & mask;; i = (i + 1) & mask) {
      if (slots_[i] == kEmptySlot) {
        slots_[i] = static_cast<uint32_t>(row);
        break;
      }
    }
  }
}

void ColumnArena::Invalidate() {
  sorted_valid_ = false;
  tuples_valid_ = false;
}

const std::vector<uint32_t>& ColumnArena::SortedRows() const {
  if (!sorted_valid_) {
    sorted_rows_.resize(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      sorted_rows_[r] = static_cast<uint32_t>(r);
    }
    std::sort(sorted_rows_.begin(), sorted_rows_.end(),
              [this](uint32_t a, uint32_t b) {
                for (size_t c = 0; c < arity_; ++c) {
                  int cmp = columns_[c][a].Compare(columns_[c][b]);
                  if (cmp != 0) return cmp < 0;
                }
                return false;
              });
    sorted_valid_ = true;
  }
  return sorted_rows_;
}

const std::vector<Tuple>& ColumnArena::SortedTuples() const {
  if (!tuples_valid_) {
    const std::vector<uint32_t>& order = SortedRows();
    sorted_tuples_.clear();
    sorted_tuples_.reserve(order.size());
    for (uint32_t r : order) sorted_tuples_.push_back(Row(r).ToTuple());
    tuples_valid_ = true;
  }
  return sorted_tuples_;
}

// --- Relation ----------------------------------------------------------------

Relation Relation::True() { return Singleton(Tuple{}); }

Relation Relation::False() { return Relation(); }

Relation Relation::Singleton(Tuple t) {
  Relation r;
  r.Insert(t);
  return r;
}

Relation Relation::FromTuples(const std::vector<Tuple>& tuples) {
  Relation r;
  for (const Tuple& t : tuples) r.Insert(t);
  return r;
}

ColumnArena& Relation::ArenaFor(size_t arity) {
  return blocks_.try_emplace(arity, arity).first->second;
}

bool Relation::Insert(const Tuple& t) {
  return Insert(t.values().data(), t.arity());
}

bool Relation::Insert(const Value* vals, size_t arity) {
  bool inserted = ArenaFor(arity).Insert(vals);
  if (inserted) ++size_;
  return inserted;
}

bool Relation::Insert(const TupleRef& ref) {
  bool inserted = ArenaFor(ref.arity()).Insert(ref);
  if (inserted) ++size_;
  return inserted;
}

bool Relation::InsertRowFrom(const ColumnArena& src, size_t row) {
  if (!ArenaFor(src.arity()).InsertRowOf(src, row)) return false;
  ++size_;
  return true;
}

bool Relation::InsertAll(const Relation& other) {
  bool changed = false;
  for (const auto& [arity, src] : other.blocks_) {
    (void)arity;
    for (size_t r = 0; r < src.size(); ++r) {
      changed |= InsertRowFrom(src, r);
    }
  }
  return changed;
}

bool Relation::Erase(const Tuple& t) {
  auto it = blocks_.find(t.arity());
  if (it == blocks_.end()) return false;
  if (!it->second.Erase(t.values().data())) return false;
  --size_;
  if (it->second.empty()) blocks_.erase(it);
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  return Contains(t.values().data(), t.arity());
}

bool Relation::Contains(const Value* vals, size_t arity) const {
  auto it = blocks_.find(arity);
  return it != blocks_.end() && it->second.Contains(vals);
}

bool Relation::Contains(const TupleRef& ref) const {
  auto it = blocks_.find(ref.arity());
  return it != blocks_.end() && it->second.Contains(ref);
}

bool Relation::IsBoolean() const {
  return empty() || (size_ == 1 && blocks_.count(0) > 0);
}

bool Relation::AsBool() const { return blocks_.count(0) > 0; }

std::vector<size_t> Relation::Arities() const {
  std::vector<size_t> arities;
  arities.reserve(blocks_.size());
  for (const auto& [arity, arena] : blocks_) {
    (void)arena;
    arities.push_back(arity);
  }
  return arities;
}

size_t Relation::CountOfArity(size_t arity) const {
  auto it = blocks_.find(arity);
  return it == blocks_.end() ? 0 : it->second.size();
}

const ColumnArena* Relation::ArenaOfArity(size_t arity) const {
  auto it = blocks_.find(arity);
  return it == blocks_.end() ? nullptr : &it->second;
}

const std::vector<Tuple>& Relation::TuplesOfArity(size_t arity) const {
  static const std::vector<Tuple>* empty_vec = new std::vector<Tuple>();
  auto it = blocks_.find(arity);
  if (it == blocks_.end()) return *empty_vec;
  return it->second.SortedTuples();
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out;
  out.reserve(size_);
  for (const auto& [arity, arena] : blocks_) {
    (void)arity;
    const std::vector<Tuple>& sorted = arena.SortedTuples();
    out.insert(out.end(), sorted.begin(), sorted.end());
  }
  return out;
}

Relation Relation::Suffixes(const Tuple& prefix) const {
  Relation out;
  ScanPrefix(prefix, [&](const TupleRef& t) {
    out.Insert(t.Slice(prefix.arity(), t.arity()));
    return true;
  });
  return out;
}

Relation Relation::Union(const Relation& other) const {
  Relation out = *this;
  out.InsertAll(other);
  return out;
}

Relation Relation::Intersect(const Relation& other) const {
  const Relation& small = size() <= other.size() ? *this : other;
  const Relation& large = size() <= other.size() ? other : *this;
  Relation out;
  for (const auto& [arity, arena] : small.blocks_) {
    const ColumnArena* other_arena = large.ArenaOfArity(arity);
    if (!other_arena) continue;
    for (size_t r = 0; r < arena.size(); ++r) {
      if (other_arena->ContainsRowOf(arena, r)) out.InsertRowFrom(arena, r);
    }
  }
  return out;
}

Relation Relation::Minus(const Relation& other) const {
  Relation out;
  for (const auto& [arity, arena] : blocks_) {
    const ColumnArena* other_arena = other.ArenaOfArity(arity);
    for (size_t r = 0; r < arena.size(); ++r) {
      if (!other_arena || !other_arena->ContainsRowOf(arena, r)) {
        out.InsertRowFrom(arena, r);
      }
    }
  }
  return out;
}

bool Relation::operator==(const Relation& other) const {
  if (size_ != other.size_) return false;
  if (blocks_.size() != other.blocks_.size()) return false;
  for (const auto& [arity, arena] : blocks_) {
    const ColumnArena* other_arena = other.ArenaOfArity(arity);
    if (!other_arena) return false;
    if (arena.size() != other_arena->size()) return false;
    for (size_t r = 0; r < arena.size(); ++r) {
      if (!other_arena->ContainsRowOf(arena, r)) return false;
    }
  }
  return true;
}

size_t Relation::Hash() const {
  // XOR of row hashes is order-insensitive, then mix in the size.
  size_t acc = 0;
  for (const auto& [arity, arena] : blocks_) {
    (void)arity;
    for (size_t r = 0; r < arena.size(); ++r) {
      acc ^= arena.RowHash(r);
    }
  }
  return HashCombine(acc, size_);
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples()) {
    if (!first) out += "; ";
    first = false;
    out += t.ToString();
  }
  out += "}";
  return out;
}

}  // namespace rel
