#include "data/relation.h"

#include <algorithm>

#include "base/error.h"
#include "base/hash.h"

namespace rel {

const std::vector<Tuple>& Relation::ArityBlock::Sorted() const {
  if (!sorted_valid) {
    sorted.assign(set.begin(), set.end());
    std::sort(sorted.begin(), sorted.end());
    sorted_valid = true;
  }
  return sorted;
}

Relation Relation::True() { return Singleton(Tuple{}); }

Relation Relation::False() { return Relation(); }

Relation Relation::Singleton(Tuple t) {
  Relation r;
  r.Insert(std::move(t));
  return r;
}

Relation Relation::FromTuples(const std::vector<Tuple>& tuples) {
  Relation r;
  for (const Tuple& t : tuples) r.Insert(t);
  return r;
}

bool Relation::Insert(Tuple t) {
  ArityBlock& block = blocks_[t.arity()];
  auto [it, inserted] = block.set.insert(std::move(t));
  (void)it;
  if (inserted) {
    block.sorted_valid = false;
    ++size_;
  }
  return inserted;
}

bool Relation::InsertAll(const Relation& other) {
  bool changed = false;
  for (const auto& [arity, block] : other.blocks_) {
    (void)arity;
    for (const Tuple& t : block.set) {
      changed |= Insert(t);
    }
  }
  return changed;
}

bool Relation::Erase(const Tuple& t) {
  auto it = blocks_.find(t.arity());
  if (it == blocks_.end()) return false;
  if (it->second.set.erase(t) == 0) return false;
  it->second.sorted_valid = false;
  --size_;
  if (it->second.set.empty()) blocks_.erase(it);
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  auto it = blocks_.find(t.arity());
  return it != blocks_.end() && it->second.set.count(t) > 0;
}

bool Relation::IsBoolean() const {
  return empty() || (size_ == 1 && blocks_.count(0) > 0);
}

bool Relation::AsBool() const { return blocks_.count(0) > 0; }

std::vector<size_t> Relation::Arities() const {
  std::vector<size_t> arities;
  arities.reserve(blocks_.size());
  for (const auto& [arity, block] : blocks_) {
    (void)block;
    arities.push_back(arity);
  }
  return arities;
}

const std::vector<Tuple>& Relation::TuplesOfArity(size_t arity) const {
  static const std::vector<Tuple>* empty_vec = new std::vector<Tuple>();
  auto it = blocks_.find(arity);
  if (it == blocks_.end()) return *empty_vec;
  return it->second.Sorted();
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out;
  out.reserve(size_);
  for (const auto& [arity, block] : blocks_) {
    (void)arity;
    const std::vector<Tuple>& sorted = block.Sorted();
    out.insert(out.end(), sorted.begin(), sorted.end());
  }
  return out;
}

Relation Relation::Suffixes(const Tuple& prefix) const {
  Relation out;
  ScanPrefix(prefix, [&](const Tuple& t) {
    out.Insert(t.Slice(prefix.arity(), t.arity()));
    return true;
  });
  return out;
}

Relation Relation::Union(const Relation& other) const {
  Relation out = *this;
  out.InsertAll(other);
  return out;
}

Relation Relation::Intersect(const Relation& other) const {
  const Relation& small = size() <= other.size() ? *this : other;
  const Relation& large = size() <= other.size() ? other : *this;
  Relation out;
  for (const auto& [arity, block] : small.blocks_) {
    (void)arity;
    for (const Tuple& t : block.set) {
      if (large.Contains(t)) out.Insert(t);
    }
  }
  return out;
}

Relation Relation::Minus(const Relation& other) const {
  Relation out;
  for (const auto& [arity, block] : blocks_) {
    (void)arity;
    for (const Tuple& t : block.set) {
      if (!other.Contains(t)) out.Insert(t);
    }
  }
  return out;
}

bool Relation::operator==(const Relation& other) const {
  if (size_ != other.size_) return false;
  if (blocks_.size() != other.blocks_.size()) return false;
  for (const auto& [arity, block] : blocks_) {
    auto it = other.blocks_.find(arity);
    if (it == other.blocks_.end()) return false;
    if (block.set.size() != it->second.set.size()) return false;
    for (const Tuple& t : block.set) {
      if (it->second.set.count(t) == 0) return false;
    }
  }
  return true;
}

size_t Relation::Hash() const {
  // XOR of tuple hashes is order-insensitive, then mix in the size.
  size_t acc = 0;
  for (const auto& [arity, block] : blocks_) {
    (void)arity;
    for (const Tuple& t : block.set) {
      acc ^= t.Hash();
    }
  }
  return HashCombine(acc, size_);
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples()) {
    if (!first) out += "; ";
    first = false;
    out += t.ToString();
  }
  out += "}";
  return out;
}

}  // namespace rel
