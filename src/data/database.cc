#include "data/database.h"

namespace rel {

bool DatabaseDelta::empty() const {
  if (wholesale) return false;
  for (const auto& [name, change] : changes) {
    (void)name;
    if (!change.inserted.empty() || !change.deleted.empty()) return false;
  }
  return true;
}

void DatabaseDelta::RecordInsert(const std::string& name, const Tuple& t) {
  Change& change = changes[name];
  // A delete recorded earlier in the same span cancels against this insert:
  // the tuple is present at both endpoints, so the net delta drops it.
  if (change.deleted.Contains(t)) {
    change.deleted.Erase(t);
    return;
  }
  change.inserted.Insert(t);
}

void DatabaseDelta::RecordDelete(const std::string& name, const Tuple& t) {
  Change& change = changes[name];
  if (change.inserted.Contains(t)) {
    change.inserted.Erase(t);
    return;
  }
  change.deleted.Insert(t);
}

Database::Database(const Database& other)
    : relations_(other.relations_), version_(other.version_) {
  // Both sides now share every relation: the next mutation on either side
  // must clone. The source's flags are mutable precisely for this line;
  // copying is therefore not thread-safe w.r.t. the source (header
  // contract) — in the engine only the single writer copies.
  for (auto& [name, slot] : relations_) {
    (void)name;
    slot.owned = false;
  }
  for (const auto& [name, slot] : other.relations_) {
    (void)name;
    slot.owned = false;
  }
}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  relations_ = other.relations_;
  version_ = other.version_;
  for (auto& [name, slot] : relations_) {
    (void)name;
    slot.owned = false;
  }
  for (const auto& [name, slot] : other.relations_) {
    (void)name;
    slot.owned = false;
  }
  return *this;
}

Relation& Database::Mutable(Slot& slot) {
  if (!slot.owned) {
    slot.rel = std::make_shared<Relation>(*slot.rel);
    slot.owned = true;
  }
  return *slot.rel;
}

bool Database::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

const Relation& Database::Get(const std::string& name) const {
  static const Relation* empty = new Relation();
  auto it = relations_.find(name);
  if (it == relations_.end()) return *empty;
  return *it->second.rel;
}

bool Database::Insert(const std::string& name, Tuple t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, Slot{std::make_shared<Relation>(), true})
             .first;
  } else if (it->second.rel->Contains(t)) {
    return false;  // no-op inserts must not clone a shared relation
  }
  if (!Mutable(it->second).Insert(std::move(t))) return false;
  ++version_;
  return true;
}

bool Database::Delete(const std::string& name, const Tuple& t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return false;
  if (!it->second.rel->Contains(t)) return false;
  Mutable(it->second).Erase(t);
  ++version_;
  if (it->second.rel->empty()) relations_.erase(it);
  return true;
}

void Database::Put(const std::string& name, Relation r) {
  relations_[name] = Slot{std::make_shared<Relation>(std::move(r)), true};
  ++version_;
}

void Database::Drop(const std::string& name) {
  if (relations_.erase(name) > 0) ++version_;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, slot] : relations_) {
    (void)slot;
    names.push_back(name);
  }
  return names;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, slot] : relations_) {
    (void)name;
    total += slot.rel->size();
  }
  return total;
}

void Database::FreezeViews() const {
  for (const auto& [name, slot] : relations_) {
    (void)name;
    for (size_t arity : slot.rel->Arities()) {
      const ColumnArena* arena = slot.rel->ArenaOfArity(arity);
      arena->SortedRows();
      arena->SortedTuples();
    }
  }
}

}  // namespace rel
