#include "data/database.h"

namespace rel {

bool Database::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

const Relation& Database::Get(const std::string& name) const {
  static const Relation* empty = new Relation();
  auto it = relations_.find(name);
  if (it == relations_.end()) return *empty;
  return it->second;
}

void Database::Insert(const std::string& name, Tuple t) {
  if (relations_[name].Insert(std::move(t))) ++version_;
}

void Database::Delete(const std::string& name, const Tuple& t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return;
  if (it->second.Erase(t)) {
    ++version_;
    if (it->second.empty()) relations_.erase(it);
  }
}

void Database::Put(const std::string& name, Relation r) {
  relations_[name] = std::move(r);
  ++version_;
}

void Database::Drop(const std::string& name) {
  if (relations_.erase(name) > 0) ++version_;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    names.push_back(name);
  }
  return names;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    (void)name;
    total += rel.size();
  }
  return total;
}

}  // namespace rel
