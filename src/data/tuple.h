// Tuple: an ordered sequence of Values (Tuples1 in Addendum A).
//
// Tuples of arity 0 exist and matter: {<>} and {} encode true and false in
// Rel (Section 4.3).

#ifndef REL_DATA_TUPLE_H_
#define REL_DATA_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "data/value.h"

namespace rel {

/// A first-order tuple. Thin wrapper over std::vector<Value> with ordering,
/// hashing, slicing and printing.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(const Value& v) { values_.push_back(v); }
  void AppendAll(const Tuple& t);

  /// Tuple made of positions [begin, end).
  Tuple Slice(size_t begin, size_t end) const;

  /// Concatenation `this · other`.
  Tuple Concat(const Tuple& other) const;

  /// True if this tuple's first `prefix.arity()` positions equal `prefix`.
  bool StartsWith(const Tuple& prefix) const;

  /// Lexicographic order; shorter tuples order before their extensions.
  int Compare(const Tuple& other) const;

  bool operator==(const Tuple& other) const { return Compare(other) == 0; }
  bool operator!=(const Tuple& other) const { return Compare(other) != 0; }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// Rel-ish syntax: (1, "a", 2.5); the empty tuple prints as ().
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace rel

template <>
struct std::hash<rel::Tuple> {
  size_t operator()(const rel::Tuple& t) const { return t.Hash(); }
};

#endif  // REL_DATA_TUPLE_H_
