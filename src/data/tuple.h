// Tuple: an ordered sequence of Values (Tuples1 in Addendum A).
//
// Tuples of arity 0 exist and matter: {<>} and {} encode true and false in
// Rel (Section 4.3).

#ifndef REL_DATA_TUPLE_H_
#define REL_DATA_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "data/value.h"

namespace rel {

/// Seed for row/tuple content hashing. Shared by Tuple::Hash, TupleRef::Hash
/// and the columnar arena's per-row hashes so that all three agree on equal
/// content.
inline constexpr size_t kTupleHashSeed = 0xa1b2c3d4;

class Tuple;

/// A non-owning view of one row of column-major relation storage.
///
/// `cols` points at a contiguous array of `arity` column vectors; position i
/// of the row is cols[i][row]. The view stays valid while rows are appended
/// to the owning arena (element buffers may reallocate, but access goes
/// through the column vector objects, whose addresses are fixed), and is
/// invalidated by Erase or by destruction/copy of the owning relation. See
/// src/data/README.md for the full invariants.
class TupleRef {
 public:
  TupleRef() = default;
  TupleRef(const std::vector<Value>* cols, size_t arity, size_t row)
      : cols_(cols),
        arity_(static_cast<uint32_t>(arity)),
        row_(static_cast<uint32_t>(row)) {}

  size_t arity() const { return arity_; }
  bool empty() const { return arity_ == 0; }
  /// The row index within the owning arena.
  size_t row() const { return row_; }

  const Value& operator[](size_t i) const { return cols_[i][row_]; }

  /// Materializes an owning Tuple with this row's values.
  Tuple ToTuple() const;
  /// Owning tuple made of positions [begin, end).
  Tuple Slice(size_t begin, size_t end) const;

  bool StartsWith(const Tuple& prefix) const;

  /// Equals Tuple::Hash() of the materialized row.
  size_t Hash() const;

  bool operator==(const Tuple& other) const;
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  const std::vector<Value>* cols_ = nullptr;
  uint32_t arity_ = 0;
  uint32_t row_ = 0;
};

/// A first-order tuple. Thin wrapper over std::vector<Value> with ordering,
/// hashing, slicing and printing.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(const Value& v) { values_.push_back(v); }
  void AppendAll(const Tuple& t);

  /// Tuple made of positions [begin, end).
  Tuple Slice(size_t begin, size_t end) const;

  /// Concatenation `this · other`.
  Tuple Concat(const Tuple& other) const;

  /// True if this tuple's first `prefix.arity()` positions equal `prefix`.
  bool StartsWith(const Tuple& prefix) const;

  /// Lexicographic order; shorter tuples order before their extensions.
  int Compare(const Tuple& other) const;

  bool operator==(const Tuple& other) const { return Compare(other) == 0; }
  bool operator!=(const Tuple& other) const { return Compare(other) != 0; }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// Rel-ish syntax: (1, "a", 2.5); the empty tuple prints as ().
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace rel

template <>
struct std::hash<rel::Tuple> {
  size_t operator()(const rel::Tuple& t) const { return t.Hash(); }
};

#endif  // REL_DATA_TUPLE_H_
