#include "data/value.h"

#include <cmath>

#include "base/error.h"
#include "base/hash.h"

namespace rel {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt:
      return "Int";
    case ValueKind::kFloat:
      return "Float";
    case ValueKind::kString:
      return "String";
    case ValueKind::kEntity:
      return "Entity";
  }
  return "?";
}

Value Value::Int(int64_t v) {
  Value value;
  value.kind_ = ValueKind::kInt;
  value.int_ = v;
  return value;
}

Value Value::Float(double v) {
  Value value;
  value.kind_ = ValueKind::kFloat;
  value.float_ = v;
  return value;
}

Value Value::String(std::string_view s) {
  Value value;
  value.kind_ = ValueKind::kString;
  value.sym_ = Interner::Global().Intern(s);
  return value;
}

Value Value::Entity(std::string_view concept_name, std::string_view id) {
  Value value;
  value.kind_ = ValueKind::kEntity;
  value.sym_ = Interner::Global().Intern(id);
  value.concept_ = Interner::Global().Intern(concept_name);
  return value;
}

int64_t Value::AsInt() const {
  InternalCheck(is_int(), "Value::AsInt on non-int");
  return int_;
}

double Value::AsFloat() const {
  InternalCheck(is_float(), "Value::AsFloat on non-float");
  return float_;
}

double Value::AsDouble() const {
  InternalCheck(is_number(), "Value::AsDouble on non-number");
  return is_int() ? static_cast<double>(int_) : float_;
}

const std::string& Value::AsString() const {
  InternalCheck(is_string(), "Value::AsString on non-string");
  return Interner::Global().Lookup(sym_);
}

const std::string& Value::EntityId() const {
  InternalCheck(is_entity(), "Value::EntityId on non-entity");
  return Interner::Global().Lookup(sym_);
}

const std::string& Value::EntityConcept() const {
  InternalCheck(is_entity(), "Value::EntityConcept on non-entity");
  return Interner::Global().Lookup(concept_);
}

int Value::Compare(const Value& other) const {
  if (kind_ != other.kind_) {
    return kind_ < other.kind_ ? -1 : 1;
  }
  switch (kind_) {
    case ValueKind::kInt:
      if (int_ != other.int_) return int_ < other.int_ ? -1 : 1;
      return 0;
    case ValueKind::kFloat:
      if (float_ != other.float_) return float_ < other.float_ ? -1 : 1;
      return 0;
    case ValueKind::kString:
      return Interner::Global().Compare(sym_, other.sym_);
    case ValueKind::kEntity: {
      int c = Interner::Global().Compare(concept_, other.concept_);
      if (c != 0) return c;
      return Interner::Global().Compare(sym_, other.sym_);
    }
  }
  return 0;
}

Value::Ordering Value::NumericCompare(const Value& other) const {
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) {
      if (int_ < other.int_) return Ordering::kLess;
      if (int_ > other.int_) return Ordering::kGreater;
      return Ordering::kEqual;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (std::isnan(a) || std::isnan(b)) return Ordering::kUnordered;
    if (a < b) return Ordering::kLess;
    if (a > b) return Ordering::kGreater;
    return Ordering::kEqual;
  }
  if (kind_ != other.kind_) return Ordering::kUnordered;
  int c = Compare(other);
  if (c < 0) return Ordering::kLess;
  if (c > 0) return Ordering::kGreater;
  return Ordering::kEqual;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind_);
  switch (kind_) {
    case ValueKind::kInt:
      seed = HashCombine(seed, HashOf<int64_t>(int_));
      break;
    case ValueKind::kFloat:
      seed = HashCombine(seed, HashOf<double>(float_));
      break;
    case ValueKind::kString:
      seed = HashCombine(seed, HashOf<uint32_t>(sym_));
      break;
    case ValueKind::kEntity:
      seed = HashCombine(seed, HashOf<uint32_t>(sym_));
      seed = HashCombine(seed, HashOf<uint32_t>(concept_));
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kFloat: {
      // Print floats so that round numbers still read as floats (1.0).
      double v = float_;
      std::string s = std::to_string(v);
      // std::to_string gives 6 decimals; trim trailing zeros but keep one.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        s.erase(std::max(last, dot + 1) + 1);
      }
      return s;
    }
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
    case ValueKind::kEntity:
      return EntityConcept() + ":\"" + EntityId() + "\"";
  }
  return "?";
}

}  // namespace rel
