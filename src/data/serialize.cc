#include "data/serialize.h"

#include <algorithm>
#include <cstring>

namespace rel {

namespace {

// Caps that keep a corrupt length prefix from driving a giant allocation
// before the (bounds-checked) element reads would fail anyway.
constexpr uint32_t kMaxArity = 1u << 16;

}  // namespace

void ByteWriter::U32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 4);
}

void ByteWriter::U64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 8);
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

bool ByteReader::U8(uint8_t* v) {
  if (data_.size() - pos_ < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  if (data_.size() - pos_ < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool ByteReader::U64(uint64_t* v) {
  if (data_.size() - pos_ < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool ByteReader::I64(int64_t* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  *v = static_cast<int64_t>(bits);
  return true;
}

bool ByteReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool ByteReader::Str(std::string_view* s) {
  uint32_t len;
  if (!U32(&len)) return false;
  if (data_.size() - pos_ < len) return false;
  *s = data_.substr(pos_, len);
  pos_ += len;
  return true;
}

uint32_t StringTable::IdFor(const std::string& s) {
  auto [it, inserted] =
      ids_.emplace(std::string_view(s), static_cast<uint32_t>(strings_.size()));
  if (inserted) strings_.push_back(it->first);
  return it->second;
}

namespace {

void EncodeStringRef(ByteWriter* w, const std::string& s, StringTable* table) {
  if (table != nullptr) {
    w->U32(table->IdFor(s));
  } else {
    w->Str(s);
  }
}

bool DecodeStringRef(ByteReader* r, const std::vector<std::string>* table,
                     std::string_view* out) {
  if (table != nullptr) {
    uint32_t id;
    if (!r->U32(&id)) return false;
    if (id >= table->size()) return false;
    *out = (*table)[id];
    return true;
  }
  return r->Str(out);
}

}  // namespace

void EncodeValue(ByteWriter* w, const Value& v, StringTable* table) {
  w->U8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kInt:
      w->I64(v.AsInt());
      break;
    case ValueKind::kFloat:
      w->F64(v.AsFloat());
      break;
    case ValueKind::kString:
      EncodeStringRef(w, v.AsString(), table);
      break;
    case ValueKind::kEntity:
      EncodeStringRef(w, v.EntityConcept(), table);
      EncodeStringRef(w, v.EntityId(), table);
      break;
  }
}

bool DecodeValue(ByteReader* r, const std::vector<std::string>* table,
                 Value* out) {
  uint8_t kind;
  if (!r->U8(&kind)) return false;
  switch (static_cast<ValueKind>(kind)) {
    case ValueKind::kInt: {
      int64_t v;
      if (!r->I64(&v)) return false;
      *out = Value::Int(v);
      return true;
    }
    case ValueKind::kFloat: {
      double v;
      if (!r->F64(&v)) return false;
      *out = Value::Float(v);
      return true;
    }
    case ValueKind::kString: {
      std::string_view s;
      if (!DecodeStringRef(r, table, &s)) return false;
      *out = Value::String(s);
      return true;
    }
    case ValueKind::kEntity: {
      std::string_view concept_name, id;
      if (!DecodeStringRef(r, table, &concept_name)) return false;
      if (!DecodeStringRef(r, table, &id)) return false;
      *out = Value::Entity(concept_name, id);
      return true;
    }
  }
  return false;  // unknown kind tag: corrupt
}

void EncodeTuple(ByteWriter* w, const Tuple& t, StringTable* table) {
  w->U32(static_cast<uint32_t>(t.arity()));
  for (size_t i = 0; i < t.arity(); ++i) EncodeValue(w, t[i], table);
}

bool DecodeTuple(ByteReader* r, const std::vector<std::string>* table,
                 Tuple* out) {
  uint32_t arity;
  if (!r->U32(&arity)) return false;
  if (arity > kMaxArity) return false;
  std::vector<Value> values(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    if (!DecodeValue(r, table, &values[i])) return false;
  }
  *out = Tuple(std::move(values));
  return true;
}

void EncodeRelation(ByteWriter* w, const Relation& rel, StringTable* table) {
  std::vector<size_t> arities = rel.Arities();
  w->U32(static_cast<uint32_t>(arities.size()));
  for (size_t arity : arities) {
    const ColumnArena* arena = rel.ArenaOfArity(arity);
    const std::vector<uint32_t>& order = arena->SortedRows();
    w->U32(static_cast<uint32_t>(arity));
    w->U64(order.size());
    for (size_t col = 0; col < arity; ++col) {
      for (uint32_t row : order) EncodeValue(w, arena->At(row, col), table);
    }
  }
}

bool DecodeRelation(ByteReader* r, const std::vector<std::string>* table,
                    Relation* out) {
  *out = Relation();
  uint32_t num_arities;
  if (!r->U32(&num_arities)) return false;
  for (uint32_t a = 0; a < num_arities; ++a) {
    uint32_t arity;
    uint64_t rows;
    if (!r->U32(&arity)) return false;
    if (arity > kMaxArity) return false;
    if (!r->U64(&rows)) return false;
    // Column-major on the wire; gather back into rows to insert. The
    // reserve is clamped so a corrupt row count cannot drive a huge
    // allocation before element reads fail.
    std::vector<std::vector<Value>> cols(arity);
    const size_t reserve = static_cast<size_t>(std::min<uint64_t>(rows, 4096));
    for (auto& c : cols) c.reserve(reserve);
    for (uint32_t col = 0; col < arity; ++col) {
      for (uint64_t row = 0; row < rows; ++row) {
        Value v;
        if (!DecodeValue(r, table, &v)) return false;
        cols[col].push_back(v);
      }
    }
    std::vector<Value> buf(arity);
    for (uint64_t row = 0; row < rows; ++row) {
      for (uint32_t col = 0; col < arity; ++col) buf[col] = cols[col][row];
      out->Insert(buf.data(), arity);
    }
  }
  return true;
}

void EncodeDatabase(ByteWriter* w, const Database& db, StringTable* table) {
  std::vector<std::string> names = db.Names();
  w->U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    w->Str(name);
    EncodeRelation(w, db.Get(name), table);
  }
}

bool DecodeDatabase(ByteReader* r, const std::vector<std::string>* table,
                    Database* out) {
  *out = Database();
  uint32_t count;
  if (!r->U32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!r->Str(&name)) return false;
    Relation rel;
    if (!DecodeRelation(r, table, &rel)) return false;
    if (rel.empty()) return false;  // Database never stores empty relations
    out->Put(std::string(name), std::move(rel));
  }
  return true;
}

}  // namespace rel
