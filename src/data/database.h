// Database: the store of named base relations, redesigned (PR 7) as an
// immutable-snapshot handle.
//
// Rel's control relations (insert/delete, Section 3.4) apply their effects
// here at transaction commit. Derived relations (those defined by `def`
// rules) are computed by the evaluator and never stored in the Database.
//
// Ownership model — copy-on-write snapshots:
//
//   * Each named relation is held through a shared_ptr slot. Copying a
//     Database copies the slot map (O(#relations) pointer copies), never
//     the tuples: the copy IS a snapshot, and the serving layer publishes
//     exactly such copies as `std::shared_ptr<const Database>` for any
//     number of reader sessions to pin.
//
//   * Mutation is copy-on-write at relation granularity. Every slot tracks
//     whether THIS Database instance created or cloned its relation; the
//     first mutation of a slot that is (or may be) shared with a copy
//     clones the relation and mutates the clone. Taking a copy marks every
//     slot of BOTH sides shared (the source's flags are mutable), so the
//     classic `Database backup = db; mutate(db);` pattern keeps its deep-
//     copy semantics at shared-copy cost.
//
//   * Thread-safety contract: concurrent const reads of one Database are
//     safe once FreezeViews() has been called after its last mutation
//     (lazily-built sorted views are the only mutable read-path state).
//     COPYING a Database concurrently with other access to the same object
//     is NOT safe — the copy writes the source's sharing flags. In the
//     engine only the single writer ever copies (to publish or roll back),
//     so this never races; see ARCHITECTURE.md "Sessions & snapshot
//     isolation".

#ifndef REL_DATA_DATABASE_H_
#define REL_DATA_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/relation.h"

namespace rel {

/// The net, effect-free difference between two Database versions, recorded
/// by the single-writer commit pipeline as it applies a transaction:
/// `inserted` holds tuples absent at `from_version` and present at
/// `to_version`, `deleted` the reverse; an insert-then-delete of the same
/// tuple within the span cancels out of both. Snapshots carry a bounded
/// chain of recent deltas so sessions can maintain cached derived state
/// forward instead of recomputing (src/core/extent_cache.h).
struct DatabaseDelta {
  struct Change {
    Relation inserted;
    Relation deleted;
  };
  uint64_t from_version = 0;
  uint64_t to_version = 0;
  /// Guards against version-counter aliasing across recovery: deltas only
  /// compose between snapshots of the same storage epoch (Engine bumps the
  /// epoch when AttachStorage rebuilds the Database from disk).
  uint64_t db_epoch = 0;
  std::map<std::string, Change> changes;

  bool empty() const;
  /// Records one effective insert (cancelling a pending delete first).
  void RecordInsert(const std::string& name, const Tuple& t);
  /// Records one effective delete (cancelling a pending insert first).
  void RecordDelete(const std::string& name, const Tuple& t);
  /// True when the whole relation changed in a way tuple deltas don't
  /// capture (Put/Drop); maintenance consumers must fall back.
  bool wholesale = false;
};

/// Named base relations. Creating a relation on first insert mirrors the
/// paper's "there is no need to declare a new base relation" (Section 3.4).
class Database {
 public:
  Database() = default;
  /// Snapshot copy: shares every relation with `other` and marks both
  /// sides copy-on-write (see the header comment for the contract).
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  /// True if a base relation named `name` exists.
  bool Has(const std::string& name) const;

  /// The base relation `name`; an empty relation if it does not exist.
  const Relation& Get(const std::string& name) const;

  /// Inserts `t` into relation `name`, creating the relation if needed.
  /// Returns true iff the tuple was actually added (false: duplicate) —
  /// the commit pipeline builds its maintenance delta from these results.
  bool Insert(const std::string& name, Tuple t);

  /// Removes `t` from relation `name` if present. Returns true iff a tuple
  /// was actually removed.
  bool Delete(const std::string& name, const Tuple& t);

  /// Replaces the whole contents of `name`.
  void Put(const std::string& name, Relation r);

  /// Drops the base relation `name` entirely.
  void Drop(const std::string& name);

  /// Names of all base relations, sorted.
  std::vector<std::string> Names() const;

  /// Total number of stored tuples across all relations.
  size_t TotalTuples() const;

  /// A monotonically increasing counter bumped on every mutation; the
  /// evaluator uses it to invalidate memoized derived relations, and the
  /// serving layer keys cross-transaction demand caches on the version of
  /// the published snapshot.
  uint64_t version() const { return version_; }

  /// Forces every relation's lazily-built sorted views (row order and the
  /// materialized-tuple compatibility view) so that subsequent const reads
  /// are write-free. The commit pipeline calls this before publishing a
  /// snapshot: afterwards any number of sessions can evaluate against the
  /// snapshot concurrently without touching a lock. Idempotent; already-
  /// valid views cost one flag check.
  void FreezeViews() const;

 private:
  struct Slot {
    std::shared_ptr<Relation> rel;
    /// True iff this Database instance created or cloned `rel` itself and
    /// no copy has been taken since — the only state in which in-place
    /// mutation is allowed. Mutable so that taking a snapshot copy can
    /// mark a const source shared.
    mutable bool owned = true;
  };

  /// The mutable relation of `slot`, cloning it first unless owned.
  Relation& Mutable(Slot& slot);

  std::map<std::string, Slot> relations_;
  uint64_t version_ = 0;
};

}  // namespace rel

#endif  // REL_DATA_DATABASE_H_
