// Database: the persistent store of named base relations.
//
// Rel's control relations (insert/delete, Section 3.4) apply their effects
// here at transaction commit. Derived relations (those defined by `def`
// rules) are computed by the evaluator and never stored in the Database.

#ifndef REL_DATA_DATABASE_H_
#define REL_DATA_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "data/relation.h"

namespace rel {

/// Named base relations. Creating a relation on first insert mirrors the
/// paper's "there is no need to declare a new base relation" (Section 3.4).
class Database {
 public:
  /// True if a base relation named `name` exists.
  bool Has(const std::string& name) const;

  /// The base relation `name`; an empty relation if it does not exist.
  const Relation& Get(const std::string& name) const;

  /// Inserts `t` into relation `name`, creating the relation if needed.
  void Insert(const std::string& name, Tuple t);

  /// Removes `t` from relation `name` if present.
  void Delete(const std::string& name, const Tuple& t);

  /// Replaces the whole contents of `name`.
  void Put(const std::string& name, Relation r);

  /// Drops the base relation `name` entirely.
  void Drop(const std::string& name);

  /// Names of all base relations, sorted.
  std::vector<std::string> Names() const;

  /// Total number of stored tuples across all relations.
  size_t TotalTuples() const;

  /// A monotonically increasing counter bumped on every mutation; the
  /// evaluator uses it to invalidate memoized derived relations.
  uint64_t version() const { return version_; }

 private:
  std::map<std::string, Relation> relations_;
  uint64_t version_ = 0;
};

}  // namespace rel

#endif  // REL_DATA_DATABASE_H_
