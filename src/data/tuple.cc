#include "data/tuple.h"

#include "base/error.h"
#include "base/hash.h"

namespace rel {

Tuple TupleRef::ToTuple() const { return Slice(0, arity_); }

Tuple TupleRef::Slice(size_t begin, size_t end) const {
  InternalCheck(begin <= end && end <= arity_, "bad tuple-ref slice");
  std::vector<Value> values;
  values.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) values.push_back((*this)[i]);
  return Tuple(std::move(values));
}

bool TupleRef::StartsWith(const Tuple& prefix) const {
  if (prefix.arity() > arity_) return false;
  for (size_t i = 0; i < prefix.arity(); ++i) {
    if ((*this)[i] != prefix[i]) return false;
  }
  return true;
}

size_t TupleRef::Hash() const {
  size_t seed = kTupleHashSeed;
  for (size_t i = 0; i < arity_; ++i) {
    seed = HashCombine(seed, (*this)[i].Hash());
  }
  return seed;
}

bool TupleRef::operator==(const Tuple& other) const {
  if (arity_ != other.arity()) return false;
  for (size_t i = 0; i < arity_; ++i) {
    if ((*this)[i] != other[i]) return false;
  }
  return true;
}

std::string TupleRef::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < arity_; ++i) {
    if (i > 0) out += ", ";
    out += (*this)[i].ToString();
  }
  out += ")";
  return out;
}

void Tuple::AppendAll(const Tuple& t) {
  values_.insert(values_.end(), t.values_.begin(), t.values_.end());
}

Tuple Tuple::Slice(size_t begin, size_t end) const {
  InternalCheck(begin <= end && end <= values_.size(), "bad tuple slice");
  return Tuple(std::vector<Value>(values_.begin() + begin, values_.begin() + end));
}

Tuple Tuple::Concat(const Tuple& other) const {
  Tuple result = *this;
  result.AppendAll(other);
  return result;
}

bool Tuple::StartsWith(const Tuple& prefix) const {
  if (prefix.arity() > arity()) return false;
  for (size_t i = 0; i < prefix.arity(); ++i) {
    if (values_[i] != prefix[i]) return false;
  }
  return true;
}

int Tuple::Compare(const Tuple& other) const {
  size_t n = std::min(arity(), other.arity());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other[i]);
    if (c != 0) return c;
  }
  if (arity() != other.arity()) return arity() < other.arity() ? -1 : 1;
  return 0;
}

size_t Tuple::Hash() const {
  size_t seed = kTupleHashSeed;
  for (const Value& v : values_) {
    seed = HashCombine(seed, v.Hash());
  }
  return seed;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace rel
