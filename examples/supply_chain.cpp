// A miniature supply-chain application (Section 7 names supply chain
// management among the applications built in Rel). The *entire* business
// logic is Rel rules: bill-of-materials explosion (recursion), rolled-up
// costs (recursion through aggregation), shortage propagation (negation),
// and a stock-consuming transaction guarded by integrity constraints.
//
// Build & run:  ./build/examples/supply_chain

#include <cstdio>

#include "base/error.h"
#include "core/engine.h"

using rel::Engine;
using rel::Relation;

int main() {
  Engine engine;

  // --- facts: parts, bill of materials, costs, stock -------------------------
  engine.Define(R"rel(
    // BOM(parent, component, quantity): a bike needs 2 wheels and 1 frame;
    // a wheel needs 32 spokes and 1 rim; the frame needs 2 tubes.
    def BOM {("bike", "wheel", 2) ; ("bike", "frame", 1) ;
             ("wheel", "spoke", 32) ; ("wheel", "rim", 1) ;
             ("frame", "tube", 2)}

    def Part(p) : BOM(p, _, _) or BOM(_, p, _)
    def Atomic(p) : Part(p) and not BOM(p, _, _)

    // Purchase costs for atomic parts only.
    def BaseCost {("spoke", 1) ; ("rim", 20) ; ("tube", 15)}
  )rel");

  // --- derived logic ----------------------------------------------------------
  engine.Define(R"rel(
    // Transitive where-used / requires relations via the stdlib TC.
    def ComponentEdge(p, c) : BOM(p, c, _)
    def Requires(p, c) : TC[ComponentEdge](p, c)

    // Total quantity of an atomic component needed per unit of a part:
    // recursive aggregation (evaluated with a replacement fixpoint).
    def UnitCost[p in Part] : BaseCost[p] where Atomic(p)
    def UnitCost[p in Part] :
        sum[(c, v) : exists((q, cc) | BOM(p, c, q) and UnitCost(c, cc)
                                      and v = q * cc)]
        where not Atomic(p)

    // A part is buildable if every atomic part it requires is in stock.
    def Missing(p) : Atomic(p) and not exists((s) | Stock(p, s) and s > 0)
    def Blocked(p) : exists((c) | Requires(p, c) and Missing(c))
    def Buildable(p) : Part(p) and not Atomic(p) and not Blocked(p)
  )rel");

  // --- constraints -------------------------------------------------------------
  engine.Define(R"rel(
    ic stock_non_negative(p, s) requires Stock(p, s) implies s >= 0
    ic atomic_costs(p) requires BaseCost(p, _) implies Atomic(p)
  )rel");

  std::printf("unit costs:   %s\n",
              engine.Query("def output : UnitCost").ToString().c_str());
  std::printf("bike needs:   %s\n",
              engine.Query("def output(c) : Requires(\"bike\", c)")
                  .ToString()
                  .c_str());

  // No stock yet: everything is blocked.
  std::printf("buildable:    %s\n",
              engine.Query("def output : Buildable").ToString().c_str());

  // --- receive stock (a transaction) ------------------------------------------
  engine.Exec(R"rel(
    def insert(:Stock, p, s) :
        {("spoke", 64) ; ("rim", 2) ; ("tube", 2)}(p, s)
  )rel");
  std::printf("after goods receipt, buildable: %s\n",
              engine.Query("def output : Buildable").ToString().c_str());

  // --- consume stock for one wheel ---------------------------------------------
  engine.Exec(R"rel(
    def delete(:Stock, p, s) : Stock(p, s) and BOM("wheel", p, _)
    def insert(:Stock, p, s2) :
        exists((s, q) | Stock(p, s) and BOM("wheel", p, q) and s2 = s - q)
  )rel");
  std::printf("stock after building a wheel:   %s\n",
              engine.Query("def output : Stock").ToString().c_str());

  // --- a violating transaction aborts ------------------------------------------
  try {
    engine.Exec(
        "def delete(:Stock, p, s) : Stock(p, s) and p = \"rim\"\n"
        "def insert(:Stock, p, s) : p = \"rim\" and s = -5");
  } catch (const rel::ConstraintViolation& v) {
    std::printf("negative stock rejected: %s\n", v.what());
  }
  std::printf("rim stock intact:                %s\n",
              engine.Query("def output(s) : Stock(\"rim\", s)")
                  .ToString()
                  .c_str());
  return 0;
}
