// A tiny interactive Rel session ("meeting users where they are",
// Section 7): type expressions to evaluate them, `def`/`ic` lines to install
// rules, and transactions with insert/delete to mutate the database.
//
//   $ ./build/examples/repl
//   rel> def E {(1,2) ; (2,3)}
//   rel> TC[E]
//   {(1, 2); (1, 3); (2, 3)}
//   rel> exec def insert(:Visited, x) : TC[E](1, x)
//   +2 / -0
//   rel> count[Visited]
//   {(2)}
//   rel> :quit

#include <cstdio>
#include <iostream>
#include <string>

#include "base/error.h"
#include "core/engine.h"

int main() {
  rel::Engine engine;
  std::string line;
  std::printf("rel-cpp — type an expression, a def/ic, 'exec <rules>',\n"
              "or :quit. The standard library is loaded.\n");
  for (;;) {
    std::printf("rel> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;
    try {
      if (line.rfind("def ", 0) == 0 || line.rfind("ic ", 0) == 0 ||
          line.rfind("@inline", 0) == 0) {
        engine.Define(line);
        std::printf("ok (%zu rules installed)\n", engine.installed_rules());
      } else if (line.rfind("exec ", 0) == 0) {
        rel::TxnResult txn = engine.Exec(line.substr(5));
        std::printf("+%zu / -%zu\n", txn.inserted, txn.deleted);
        if (!txn.output.empty()) {
          std::printf("%s\n", txn.output.ToString().c_str());
        }
      } else {
        std::printf("%s\n", engine.Eval(line).ToString().c_str());
      }
    } catch (const rel::RelError& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
