// The Rel front door: an interactive session on stdin, or a line-protocol
// server ("meeting users where they are", Section 7).
//
// Interactive (default): type expressions to evaluate them, `def`/`ic`
// lines to install rules, and transactions with insert/delete to mutate
// the database.
//
//   $ ./build/examples/repl
//   rel> def E {(1,2) ; (2,3)}
//   rel> TC[E]
//   {(1, 2); (1, 3); (2, 3)}
//   rel> exec def insert(:Visited, x) : TC[E](1, x)
//   +2 / -0
//   rel> count[Visited]
//   {(2)}
//   rel> :quit
//
// Server: `repl --serve [port] [workers]` starts the TCP line-protocol
// server (src/server/) on 127.0.0.1 and serves until EOF on stdin or
// SIGINT-style termination. Each connection gets its own snapshot-isolated
// session; try it with e.g.
//
//   $ ./build/examples/repl --serve 8080 &
//   $ printf 'eval 1 + 2\nquit\n' | nc 127.0.0.1 8080
//   ok {(3)}
//   ok bye

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "base/error.h"
#include "core/engine.h"
#include "server/server.h"

namespace {

int RunServer(rel::Engine* engine, int port, int workers) {
  rel::server::ServerOptions options;
  options.port = port;
  options.num_workers = workers;
  rel::server::LineServer server(engine, options);
  rel::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("rel-cpp serving on 127.0.0.1:%d (%d workers)\n"
              "line protocol: eval/query/exec/def/base/refresh/snap/ping/"
              "quit — close stdin to stop.\n",
              server.port(), workers);
  std::fflush(stdout);
  // Block until the terminal side is done with us.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == ":quit" || line == ":q") break;
  }
  server.Stop();
  return 0;
}

int RunInteractive(rel::Engine* engine) {
  std::string line;
  std::printf("rel-cpp — type an expression, a def/ic, 'exec <rules>',\n"
              "or :quit. The standard library is loaded.\n");
  for (;;) {
    std::printf("rel> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;
    try {
      if (line.rfind("def ", 0) == 0 || line.rfind("ic ", 0) == 0 ||
          line.rfind("@inline", 0) == 0) {
        engine->Define(line);
        std::printf("ok (%zu rules installed)\n", engine->installed_rules());
      } else if (line.rfind("exec ", 0) == 0) {
        rel::TxnResult txn = engine->Exec(line.substr(5));
        std::printf("+%zu / -%zu\n", txn.inserted, txn.deleted);
        if (!txn.output.empty()) {
          std::printf("%s\n", txn.output.ToString().c_str());
        }
      } else {
        std::printf("%s\n", engine->Eval(line).ToString().c_str());
      }
    } catch (const rel::RelError& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rel::Engine engine;
  if (argc > 1 && std::string(argv[1]) == "--serve") {
    int port = argc > 2 ? std::atoi(argv[2]) : 0;
    int workers = argc > 3 ? std::atoi(argv[3]) : 4;
    return RunServer(&engine, port, workers);
  }
  return RunInteractive(&engine);
}
