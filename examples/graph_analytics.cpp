// Graph analytics with the stdlib graph library (Sections 1 and 5.4):
// transitive closure, all-pairs shortest paths, PageRank with a stop
// condition, degrees and triangle counting — all as library calls over an
// edge relation, exactly the "libraries instead of language extensions"
// workflow the paper advocates.
//
// Build & run:  ./build/examples/graph_analytics

#include <cstdio>

#include "benchutil/generators.h"
#include "core/engine.h"

using rel::Engine;
using rel::Relation;
using rel::Tuple;

int main() {
  // A small random digraph plus its node set.
  const int n = 12;
  std::vector<Tuple> edges = rel::benchutil::RandomGraph(n, 3 * n, 2024);
  std::vector<Tuple> nodes = rel::benchutil::NodeSet(n);

  Engine engine;
  engine.Insert("E", edges);
  engine.Insert("V", nodes);

  Relation tc = engine.Query("def output : TC[E]");
  std::printf("reachable pairs:       %zu of %d\n", tc.size(), n * n);

  Relation apsp = engine.Query("def output : APSP[V, E]");
  std::printf("shortest-path entries: %zu\n", apsp.size());
  Relation diameter =
      engine.Query("def output : max[(d) : APSP[V, E](_, _, d)]");
  std::printf("graph diameter:        %s\n", diameter.ToString().c_str());

  // Degrees — grouped counts from the library.
  Relation outdeg = engine.Query("def output : outdegree[E]");
  Relation top = engine.Query("def output : Argmax[outdegree[E]]");
  std::printf("max out-degree nodes:  %s\n", top.ToString().c_str());
  std::printf("out-degrees:           %s\n", outdeg.ToString().c_str());

  Relation triangles = engine.Query("def output : triangle_count[E]");
  std::printf("ordered triangles:     %s\n", triangles.ToString().c_str());

  // PageRank needs a column-stochastic matrix; build it in Rel itself from
  // the edge relation: G(i, j) = 1 / outdegree(j) for each edge j -> i,
  // shifted to 1-based indexes for the vector encoding of Section 5.3.2.
  engine.Define(
      "def G(i, j, w) :\n"
      "  exists((a, b, d) | E(b, a) and i = a + 1 and j = b + 1 and\n"
      "                     outdegree[E](b, d) and w = 1.0 / d)");
  Relation pr = engine.Query("def output : PageRank[G]");
  std::printf("PageRank entries:      %zu\n", pr.size());
  Relation best = engine.Query("def output : Argmax[PageRank[G]]");
  std::printf("top-ranked node(s):    %s\n", best.ToString().c_str());
  return 0;
}
