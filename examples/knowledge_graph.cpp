// Building a relational knowledge graph (Sections 2 and 6): a record-model
// dataset is decomposed into Graph Normal Form, validated against a GNF
// schema (6NF shapes + the unique-identifier property), and then queried
// through Rel rules that define the *semantic layer* — derived concepts on
// top of the stored facts.
//
// Build & run:  ./build/examples/knowledge_graph

#include <cstdio>

#include "base/error.h"
#include "core/engine.h"
#include "kg/entity.h"
#include "kg/gnf.h"
#include "kg/schema.h"

using rel::Engine;
using rel::Relation;
using rel::Tuple;
using rel::Value;

int main() {
  // --- 1. Record-model input (ER-style rows, NULLs included) -----------------
  rel::kg::RecordSpec product_spec{"product", "Product", {"Name", "Price"}};
  std::vector<rel::kg::WideRow> products = {
      {"P1", {Value::String("widget"), Value::Int(10)}},
      {"P2", {Value::String("gadget"), Value::Int(20)}},
      {"P3", {Value::String("gizmo"), Value::Int(30)}},
      {"P4", {std::nullopt, Value::Int(40)}},  // name unknown: NULL
  };

  rel::kg::EntityRegistry registry;
  rel::Database db;
  DecomposeRecords(product_spec, products, &registry, &db);
  std::printf("GNF relations after decomposition: ");
  for (const std::string& name : db.Names()) std::printf("%s ", name.c_str());
  std::printf("\n  (the NULL name of P4 is simply an absent tuple)\n");

  // --- 2. Declare and validate the GNF schema --------------------------------
  rel::kg::Schema schema;
  DeclareRecord(product_spec, &schema);
  schema.DeclareAllKey("PaymentOrder", {"payment", "order"});
  schema.DeclareKeyValue("PaymentAmount", {"payment"});
  schema.DeclareKeyValue("OrderProductQuantity", {"order", "product"});

  db.Insert("PaymentOrder", Tuple({registry.Get("payment", "Pmt1"),
                                   registry.Get("order", "O1")}));
  db.Insert("PaymentAmount", Tuple({registry.Get("payment", "Pmt1"),
                                    Value::Int(20)}));
  db.Insert("OrderProductQuantity",
            Tuple({registry.Get("order", "O1"), registry.Get("product", "P1"),
                   Value::Int(2)}));
  db.Insert("OrderProductQuantity",
            Tuple({registry.Get("order", "O2"), registry.Get("product", "P3"),
                   Value::Int(1)}));

  std::printf("schema validation: %s\n",
              schema.Validate(db).empty() ? "GNF-conformant" : "violations!");

  // The unique-identifier property: an order cannot reuse a product's id.
  try {
    registry.Get("order", "P1");
  } catch (const rel::ConstraintViolation& v) {
    std::printf("unique-identifier property enforced: %s\n", v.what());
  }

  // --- 3. The semantic layer: derived concepts in Rel ------------------------
  Engine engine;
  for (const std::string& name : db.Names()) {
    std::vector<Tuple> tuples = db.Get(name).SortedTuples();
    engine.Insert(name, tuples);
  }
  engine.Define(
      // The concept's extent, derived from the stored facts.
      "def Product(p) : ProductPrice(p, _) or ProductName(p, _)\n"
      // Derived concept: premium products (business logic as rules).
      "def Premium(p) : exists((x) | ProductPrice(p, x) and x >= 20)\n"
      // Derived relationship: which orders contain premium products.
      "def PremiumOrder(o) :\n"
      "  exists((p) | OrderProductQuantity(o, p, _) and Premium(p))\n"
      // Display names with a fallback; `p in Product` gives the default a
      // domain, just like the paper's OrderPaid[x in Ord] (Section 5.2).
      "def DisplayName[p in Product] : ProductName[p] <++ \"(unnamed)\"");

  std::printf("premium products:  %s\n",
              engine.Query("def output : Premium").ToString().c_str());
  std::printf("premium orders:    %s\n",
              engine.Query("def output : PremiumOrder").ToString().c_str());
  std::printf("display names:     %s\n",
              engine.Query("def output : DisplayName").ToString().c_str());

  // --- 4. Round-trip back to the record view ---------------------------------
  std::vector<rel::kg::WideRow> rows = ReassembleRecords(product_spec, db);
  std::printf("reassembled %zu wide rows; P4 name is %s\n", rows.size(),
              rows[3].values[0] ? "present" : "NULL");
  return 0;
}
