// Equivalent-query fuzzer CLI (src/fuzz): generate random Datalog programs,
// run each under the full configuration lattice — every strategy, thread
// count, plan-order seed and demand pattern of the classical engine, plus
// the Rel engine via the to_rel bridge — and report any configuration that
// disagrees with the naive-scan oracle on answers, error kinds, or the
// cost invariants between equal-work configurations.
//
// Build & run:  ./build/examples/fuzz --seed 42 --iters 200
//
//   --seed N     base seed; iteration i runs case seed N+i  (default 42)
//   --iters K    number of cases                            (default 100)
//   --out DIR    write minimized reproducers as DIR/seed_<N>.dl
//                (without --out, reproducers print to stdout only)
//   --updates S  update-stream mode: each case is a base program plus S
//                random single-tuple EDB inserts/deletes, run
//                incrementally (EvaluateDelta + persistent index cache)
//                against a from-scratch oracle after every step, across
//                the (plan seed x thread count) lattice — the PR 9
//                incremental-maintenance differential (0 = classic
//                static mode)
//
// Exit status: 0 when every case is clean, 1 when any case produced a
// discrepancy (after printing its minimized reproducer).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/runner.h"
#include "fuzz/update_stream.h"

int main(int argc, char** argv) {
  uint64_t seed = 42;
  int iters = 100;
  int updates = 0;
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--updates") == 0 && i + 1 < argc) {
      updates = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: fuzz [--seed N] [--iters K] [--updates S] "
                   "[--out DIR]\n");
      return 2;
    }
  }

  rel::fuzz::RunnerOptions runner_options;

  if (updates > 0) {
    rel::fuzz::StreamOptions stream_options;
    stream_options.num_steps = updates;
    int failures = 0;
    long long configs = 0;
    uint64_t incremental = 0, fallback = 0;
    for (int i = 0; i < iters; ++i) {
      uint64_t case_seed = seed + static_cast<uint64_t>(i);
      rel::fuzz::UpdateStream stream =
          rel::fuzz::GenerateUpdateStream(case_seed, stream_options);
      rel::fuzz::RunResult result = rel::fuzz::RunUpdateStream(
          stream, runner_options, &incremental, &fallback);
      configs += result.configs_run;
      if (result.ok()) {
        if ((i + 1) % 100 == 0) {
          std::printf("[%d/%d] clean (%lld step-configs, %llu incremental, "
                      "%llu fallback)\n",
                      i + 1, iters, configs,
                      static_cast<unsigned long long>(incremental),
                      static_cast<unsigned long long>(fallback));
        }
        continue;
      }
      ++failures;
      std::printf("%s", rel::fuzz::FormatStreamResult(stream, result).c_str());
      std::printf("--- minimizing stream seed=%llu ...\n",
                  static_cast<unsigned long long>(case_seed));
      rel::fuzz::UpdateStream small =
          rel::fuzz::MinimizeStream(stream, runner_options);
      rel::fuzz::RunResult small_result =
          rel::fuzz::RunUpdateStream(small, runner_options);
      std::printf("%s",
                  rel::fuzz::FormatStreamResult(small, small_result).c_str());
      if (!out_dir.empty()) {
        std::string path = out_dir + "/stream_seed_" +
                           std::to_string(case_seed) + ".dl";
        std::ofstream f(path);
        f << rel::fuzz::StreamToText(small);
        std::printf("--- reproducer written to %s\n", path.c_str());
      }
    }
    std::printf("fuzz --updates: %d/%d streams clean, %lld step-configs "
                "(%llu incremental, %llu fallback)\n",
                iters - failures, iters, configs,
                static_cast<unsigned long long>(incremental),
                static_cast<unsigned long long>(fallback));
    return failures == 0 ? 0 : 1;
  }
  int failures = 0;
  long long configs = 0;
  for (int i = 0; i < iters; ++i) {
    uint64_t case_seed = seed + static_cast<uint64_t>(i);
    rel::fuzz::FuzzCase c = rel::fuzz::GenerateCase(case_seed);
    rel::fuzz::RunResult result = rel::fuzz::RunCase(c, runner_options);
    configs += result.configs_run;
    if (result.ok()) {
      if ((i + 1) % 100 == 0) {
        std::printf("[%d/%d] clean (%lld configs so far)\n", i + 1, iters,
                    configs);
      }
      continue;
    }
    ++failures;
    std::printf("%s", rel::fuzz::FormatResult(c, result).c_str());
    std::printf("--- minimizing seed=%llu ...\n",
                static_cast<unsigned long long>(case_seed));
    rel::fuzz::FuzzCase small = rel::fuzz::Minimize(c, runner_options);
    rel::fuzz::RunResult small_result =
        rel::fuzz::RunCase(small, runner_options);
    std::printf("%s", rel::fuzz::FormatResult(small, small_result).c_str());
    if (!out_dir.empty()) {
      std::string path = out_dir + "/seed_" + std::to_string(case_seed) +
                         ".dl";
      std::ofstream f(path);
      f << rel::fuzz::CaseToText(small);
      std::printf("--- reproducer written to %s\n", path.c_str());
    }
  }
  std::printf("fuzz: %d/%d cases clean, %lld configuration runs\n",
              iters - failures, iters, configs);
  return failures == 0 ? 0 : 1;
}
