// Linear algebra over relations (Sections 1 and 5.3.2): vectors are
// (index, value) pairs, matrices are (row, col, value) triples, and the
// operations are one-line library definitions — the paper's argument that
// relations subsume the functional/array view.
//
// Build & run:  ./build/examples/linear_algebra

#include <cstdio>

#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "core/engine.h"

using rel::Engine;
using rel::Relation;
using rel::Tuple;
using rel::Value;

int main() {
  Engine engine;

  // The Section 5.3.2 worked example: u = (4,2), v = (3,6), u·v = 24.
  engine.Define("def U {(1,4) ; (2,2)}\n"
                "def V {(1,3) ; (2,6)}");
  std::printf("u . v            = %s\n",
              engine.Eval("ScalarProd[U, V]").ToString().c_str());

  // Matrix product, matrix-vector product, transpose.
  engine.Define(
      "def A {(1,1,1) ; (1,2,2) ; (2,1,3) ; (2,2,4)}\n"
      "def B {(1,1,5) ; (1,2,6) ; (2,1,7) ; (2,2,8)}\n"
      "def X {(1,5) ; (2,6)}");
  std::printf("A * B            = %s\n",
              engine.Eval("MatrixMult[A, B]").ToString().c_str());
  std::printf("A * x            = %s\n",
              engine.Eval("MatrixVector[A, X]").ToString().c_str());
  std::printf("transpose(A)     = %s\n",
              engine.Eval("Transpose[A]").ToString().c_str());

  // Sparsity is free: relations only store the nonzero entries, and the
  // same MatrixMult definition works for any dimensions (the data
  // independence argument from the paper's introduction).
  std::vector<Tuple> sa = rel::benchutil::SparseMatrix(20, 20, 0.15, 5);
  std::vector<Tuple> sb = rel::benchutil::SparseMatrix(20, 20, 0.15, 6);
  engine.Insert("SA", sa);
  engine.Insert("SB", sb);
  Relation prod = engine.Query("def output : MatrixMult[SA, SB]");
  std::printf("sparse 20x20: %zu x %zu nonzeros -> %zu in the product\n",
              sa.size(), sb.size(), prod.size());

  // Cross-check against the handwritten kernel.
  std::vector<Tuple> ref = rel::benchutil::MatMulRef(sa, sb);
  size_t matches = 0;
  for (const Tuple& t : ref) {
    Relation cell = engine.Query(
        "def output(v) : MatrixMult[SA, SB](" + std::to_string(t[0].AsInt()) +
        ", " + std::to_string(t[1].AsInt()) + ", v)");
    if (cell.size() == 1 &&
        std::abs(cell.SortedTuples()[0][0].AsDouble() - t[2].AsDouble()) <
            1e-9) {
      ++matches;
    }
  }
  std::printf("agreement with handwritten kernel: %zu / %zu cells\n", matches,
              ref.size());

  // Frobenius-ish norm via aggregation over an abstraction.
  std::printf("sum of squares   = %s\n",
              engine.Eval("sum[[i, j] : A[i, j] * A[i, j]]")
                  .ToString()
                  .c_str());
  return 0;
}
