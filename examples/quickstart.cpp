// Quickstart: the paper's Figure 1 database, queried end to end — rules,
// negation, aggregation with grouping, and a transaction with integrity
// constraints (Sections 3 and 5.2 of the paper).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "base/error.h"
#include "core/engine.h"

using rel::Engine;
using rel::Relation;
using rel::Tuple;
using rel::TxnResult;
using rel::Value;

namespace {

Value S(const char* s) { return Value::String(s); }
Value I(int64_t i) { return Value::Int(i); }

void Show(const char* title, const Relation& r) {
  std::printf("%-28s %s\n", title, r.ToString().c_str());
}

}  // namespace

int main() {
  Engine engine;  // loads the Rel standard library

  // --- the Figure 1 database -------------------------------------------------
  engine.Insert("PaymentOrder", {Tuple({S("Pmt1"), S("O1")}),
                                 Tuple({S("Pmt2"), S("O2")}),
                                 Tuple({S("Pmt3"), S("O1")}),
                                 Tuple({S("Pmt4"), S("O3")})});
  engine.Insert("PaymentAmount",
                {Tuple({S("Pmt1"), I(20)}), Tuple({S("Pmt2"), I(10)}),
                 Tuple({S("Pmt3"), I(10)}), Tuple({S("Pmt4"), I(90)})});
  engine.Insert("OrderProductQuantity",
                {Tuple({S("O1"), S("P1"), I(2)}), Tuple({S("O1"), S("P2"), I(1)}),
                 Tuple({S("O2"), S("P1"), I(1)}), Tuple({S("O3"), S("P3"), I(4)})});
  engine.Insert("ProductPrice",
                {Tuple({S("P1"), I(10)}), Tuple({S("P2"), I(20)}),
                 Tuple({S("P3"), I(30)}), Tuple({S("P4"), I(40)})});

  // --- basic queries (Section 3.1) -------------------------------------------
  Show("orders with payments",
       engine.Query("def output(y) : PaymentOrder(_, y)"));
  Show("unordered products",
       engine.Query("def output(x) : ProductPrice(x,_) and "
                    "not OrderProductQuantity(_,x,_)"));
  Show("expensive products",
       engine.Query("def output(x) : exists((p) | ProductPrice(x, p) "
                    "and p > 15)"));

  // --- persistent model: business logic as rules (Section 5.2) ---------------
  engine.Define(
      "def Ord(x) : OrderProductQuantity(x,_,_)\n"
      "def OrderLineAmount(o, p, a) :\n"
      "  exists((q, pr) | OrderProductQuantity(o, p, q) and\n"
      "                   ProductPrice(p, pr) and a = q * pr)\n"
      "def OrderTotal[x in Ord] : sum[OrderLineAmount[x]]\n"
      "def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and "
      "PaymentAmount(y,z)\n"
      "def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0");

  Show("order totals", engine.Query("def output : OrderTotal"));
  Show("order payments", engine.Query("def output : OrderPaid"));
  Show("open balance",
       engine.Query("def output(o, b) : exists((t, p) | OrderTotal(o, t) and "
                    "OrderPaid(o, p) and b = t - p and b > 0)"));

  // --- integrity constraints (Section 3.5) -----------------------------------
  engine.Define(
      "ic valid_products(x) requires\n"
      "  OrderProductQuantity(_,x,_) implies ProductPrice(x,_)");

  // --- a transaction: close fully paid orders (Section 3.4) ------------------
  TxnResult txn = engine.Exec(
      "def delete (:OrderProductQuantity,x,y,z) :\n"
      "  OrderProductQuantity(x,y,z) and\n"
      "  exists( (u) | OrderPaid(x,u) and OrderTotal(x,u) )\n"
      "def insert (:ClosedOrders,x) :\n"
      "  exists( (u) | OrderPaid(x,u) and OrderTotal(x,u))");
  std::printf("transaction: +%zu / -%zu tuples\n", txn.inserted, txn.deleted);
  Show("closed orders", engine.Base("ClosedOrders"));

  // --- a violating transaction aborts and rolls back -------------------------
  try {
    engine.Exec(
        "def insert(:OrderProductQuantity, o, p, q) :\n"
        "  o = \"O9\" and p = \"NoSuchProduct\" and q = 1");
  } catch (const rel::ConstraintViolation& v) {
    std::printf("aborted as expected: %s\n", v.what());
  }
  Show("O9 not inserted",
       engine.Query("def output(p) : OrderProductQuantity(\"O9\", p, _)"));
  return 0;
}
