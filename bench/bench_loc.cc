// E11 — the code-size claim (Section 7: "drastically smaller (up to 95%)
// code bases"). For each task implemented in this repository we count the
// non-blank, non-comment source lines of the paired implementations:
// the Rel program, the classical-Datalog encoding (where expressible), and
// the handwritten C++ (taken verbatim from src/benchutil/reference.cc).
//
// This binary prints the table; it has no timing component.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace {

int CountLines(const std::string& source) {
  std::istringstream in(source);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 2, "//") == 0) continue;
    if (line.compare(first, 1, "%") == 0) continue;
    ++count;
  }
  return count;
}

struct TaskRow {
  const char* task;
  std::string rel;
  std::string datalog;  // empty = not expressible in classical Datalog
  std::string cpp;
};

const char* kTcRel = R"(
def TC({E}, x, y) : E(x, y)
def TC({E}, x, y) : exists((z) | E(x, z) and TC[E](z, y))
)";

const char* kTcDatalog = R"(
tc(X,Y) :- edge(X,Y).
tc(X,Z) :- edge(X,Y), tc(Y,Z).
)";

const char* kTcCpp = R"(
std::set<std::pair<int64_t, int64_t>> TransitiveClosureRef(
    const std::vector<Tuple>& edges) {
  std::map<int64_t, std::vector<int64_t>> adj;
  std::set<int64_t> nodes;
  for (const Tuple& e : edges) {
    adj[e[0].AsInt()].push_back(e[1].AsInt());
    nodes.insert(e[0].AsInt());
    nodes.insert(e[1].AsInt());
  }
  std::set<std::pair<int64_t, int64_t>> closure;
  for (int64_t s : nodes) {
    std::deque<int64_t> queue = {s};
    std::set<int64_t> visited;
    while (!queue.empty()) {
      int64_t u = queue.front();
      queue.pop_front();
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (int64_t v : it->second) {
        if (visited.insert(v).second) {
          closure.emplace(s, v);
          queue.push_back(v);
        }
      }
    }
  }
  return closure;
}
)";

const char* kApspRel = R"(
def APSP({V}, {E}, x, y, 0) : V(x) and V(y) and x = y
def APSP({V}, {E}, x, y, i) :
    i = min[(j) : exists((z) | E(x, z) and APSP[V, E](z, y, j - 1))]
)";

const char* kApspCpp = R"(
std::map<std::pair<int64_t, int64_t>, int64_t> ApspRef(
    int n, const std::vector<Tuple>& edges) {
  std::map<int64_t, std::vector<int64_t>> adj;
  for (const Tuple& e : edges) adj[e[0].AsInt()].push_back(e[1].AsInt());
  std::map<std::pair<int64_t, int64_t>, int64_t> dist;
  for (int64_t s = 0; s < n; ++s) {
    dist[{s, s}] = 0;
    std::deque<int64_t> queue = {s};
    std::map<int64_t, int64_t> d;
    d[s] = 0;
    while (!queue.empty()) {
      int64_t u = queue.front();
      queue.pop_front();
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (int64_t v : it->second) {
        if (v < 0 || v >= n) continue;
        if (d.count(v)) continue;
        d[v] = d[u] + 1;
        dist[{s, v}] = d[v];
        queue.push_back(v);
      }
    }
  }
  return dist;
}
)";

const char* kPageRankRel = R"(
def pagerank_vector[d, i] : 1.0 / d where range(1, d, 1, i)
def pagerank_delta[{V1}, {V2}] : max[[k] : rel_primitive_abs[V1[k] - V2[k]]]
def pagerank_next[{G}, {P}] : MatrixVector[G, P]
def pagerank_stop({G}, {P}) : pagerank_delta[pagerank_next[G, P], P] > 0.005
def PageRank[{G}] : pagerank_vector[dimension[G]] where empty(PageRank[G])
def PageRank[{G}] :
    pagerank_next[G, PageRank[G]]
    where not empty(PageRank[G]) and pagerank_stop(G, PageRank[G])
def PageRank[{G}] :
    PageRank[G]
    where not empty(PageRank[G]) and not pagerank_stop(G, PageRank[G])
)";

const char* kPageRankCpp = R"(
std::vector<double> PageRankRef(int n, const std::vector<Tuple>& g, double eps,
                                int* iterations) {
  std::vector<std::tuple<int64_t, int64_t, double>> entries;
  entries.reserve(g.size());
  for (const Tuple& t : g) {
    entries.emplace_back(t[0].AsInt(), t[1].AsInt(), t[2].AsDouble());
  }
  std::vector<double> p(n + 1, 1.0 / n);
  int iters = 0;
  for (;;) {
    ++iters;
    std::vector<double> next(n + 1, 0.0);
    for (const auto& [i, j, v] : entries) next[i] += v * p[j];
    double delta = 0;
    for (int i = 1; i <= n; ++i) {
      delta = std::max(delta, std::abs(next[i] - p[i]));
    }
    p = std::move(next);
    if (delta <= eps) break;
  }
  if (iterations) *iterations = iters;
  return p;
}
)";

const char* kMatMulRel = R"(
def MatrixMult[{A}, {B}, i, j] : sum[[k] : A[i, k] * B[k, j]]
)";

const char* kMatMulCpp = R"(
std::vector<Tuple> MatMulRef(const std::vector<Tuple>& a,
                             const std::vector<Tuple>& b) {
  std::map<int64_t, std::vector<std::pair<int64_t, double>>> b_rows;
  for (const Tuple& t : b) {
    b_rows[t[0].AsInt()].emplace_back(t[1].AsInt(), t[2].AsDouble());
  }
  std::map<std::pair<int64_t, int64_t>, double> acc;
  for (const Tuple& t : a) {
    auto it = b_rows.find(t[1].AsInt());
    if (it == b_rows.end()) continue;
    double av = t[2].AsDouble();
    int64_t i = t[0].AsInt();
    for (const auto& [j, bv] : it->second) {
      acc[{i, j}] += av * bv;
    }
  }
  std::vector<Tuple> out;
  out.reserve(acc.size());
  for (const auto& [ij, v] : acc) {
    if (v == 0) continue;
    out.push_back(
        Tuple({Value::Int(ij.first), Value::Int(ij.second), Value::Float(v)}));
  }
  return out;
}
)";

const char* kGroupSumRel = R"(
def Ord(x) : OrderProductQuantity(x,_,_)
def OrderPaymentAmount(x,y,z) : PaymentOrder(y,x) and PaymentAmount(y,z)
def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0
)";

const char* kGroupSumCpp = R"(
std::map<Value, int64_t> GroupedTotals(const OrdersWorkload& w) {
  std::map<Value, Value> amounts;
  for (const Tuple& t : w.payment_amount) amounts.emplace(t[0], t[1]);
  std::map<Value, int64_t> totals;
  for (const Tuple& t : w.order_product_quantity) totals[t[0]];
  for (const Tuple& t : w.payment_order) {
    totals[t[1]] += amounts.at(t[0]).AsInt();
  }
  return totals;
}
)";

}  // namespace

int main() {
  std::vector<TaskRow> rows = {
      {"transitive closure", kTcRel, kTcDatalog, kTcCpp},
      {"all-pairs shortest paths", kApspRel, "", kApspCpp},
      {"PageRank (stop condition)", kPageRankRel, "", kPageRankCpp},
      {"sparse matrix multiply", kMatMulRel, "", kMatMulCpp},
      {"grouped sum with default", kGroupSumRel, "", kGroupSumCpp},
  };

  std::printf(
      "E11: source lines per task (Rel vs classical Datalog vs handwritten "
      "C++)\n");
  std::printf("%-28s %8s %10s %8s %12s\n", "task", "Rel", "Datalog", "C++",
              "reduction");
  int total_rel = 0, total_cpp = 0;
  for (const TaskRow& row : rows) {
    int rel = CountLines(row.rel);
    int cpp = CountLines(row.cpp);
    total_rel += rel;
    total_cpp += cpp;
    std::string datalog =
        row.datalog.empty() ? "n/a" : std::to_string(CountLines(row.datalog));
    std::printf("%-28s %8d %10s %8d %11.0f%%\n", row.task, rel,
                datalog.c_str(), cpp, 100.0 * (1.0 - double(rel) / cpp));
  }
  std::printf("%-28s %8d %10s %8d %11.0f%%\n", "TOTAL", total_rel, "",
              total_cpp, 100.0 * (1.0 - double(total_rel) / total_cpp));
  std::printf(
      "\nPaper claim (Section 7): applications in Rel had up to 95%% "
      "smaller code bases than the legacy applications they replaced.\n");
  return 0;
}
