// Parallel-evaluator scaling series: the indexed semi-naive evaluator at
// 1/2/4/8 worker threads over the transitive-closure workloads of bench_tc,
// at sizes where rounds are wide enough to chunk (n >= 128).
//
// Reading the results: the threads:1 series must match bench_tc's
// BM_TC_DatalogSemiNaive (same code path, zero pool overhead); speedup is
// threads:1 wall time over threads:N at fixed (n, random). The random
// series parallelizes well (few rounds, wide deltas); the chain series is
// the adversarial case (n rounds of ~n-row deltas, so the per-round barrier
// cost is the whole story). Counters: tasks/steals/merges expose the pool;
// derived must be identical across thread counts — the determinism
// invariant, checked by tests/datalog/parallel_eval_test.cc.
//
// A second series scales the unit DAG: k independent closure components,
// one unit each, evaluated concurrently even when every per-round delta is
// too small to chunk.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "datalog/eval.h"

namespace rel {
namespace {

void BM_TC_Par(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool chain = state.range(1) == 0;
  int threads = static_cast<int>(state.range(2));
  std::vector<Tuple> edges = chain
                                 ? benchutil::ChainGraph(n)
                                 : benchutil::RandomGraph(n, 3 * n, /*seed=*/42);
  for (auto _ : state) {
    datalog::Program program = datalog::ParseDatalog(
        "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
    for (const Tuple& e : edges) program.AddFact("edge", e);
    datalog::EvalOptions options;
    options.strategy = datalog::Strategy::kSemiNaive;
    options.num_threads = threads;
    datalog::EvalStats stats;
    Relation tc = datalog::EvaluatePredicate(program, "tc", options, &stats);
    benchmark::DoNotOptimize(tc.size());
    state.counters["derived"] = static_cast<double>(stats.tuples_derived);
    state.counters["tasks"] = static_cast<double>(stats.par_tasks);
    state.counters["steals"] = static_cast<double>(stats.par_steals);
    state.counters["merges"] = static_cast<double>(stats.par_merges);
  }
}
BENCHMARK(BM_TC_Par)
    ->ArgNames({"n", "random", "threads"})
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (int64_t shape : {0, 1}) {
        for (int64_t n : {128, 256, 512}) {
          for (int64_t threads : {1, 2, 4, 8}) {
            b->Args({n, shape, threads});
          }
        }
      }
    })
    ->Unit(benchmark::kMillisecond);

void BM_TC_ParComponents(benchmark::State& state) {
  // k disjoint random-graph closures: k independent units on the DAG.
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  int threads = static_cast<int>(state.range(2));
  std::vector<std::vector<Tuple>> components;
  std::string rules;
  for (int c = 0; c < k; ++c) {
    components.push_back(
        benchutil::RandomGraph(n, 3 * n, /*seed=*/100 + c));
    std::string e = "e" + std::to_string(c);
    std::string tc = "tc" + std::to_string(c);
    rules += tc + "(X,Y) :- " + e + "(X,Y). " + tc + "(X,Z) :- " + e +
             "(X,Y), " + tc + "(Y,Z).\n";
  }
  for (auto _ : state) {
    datalog::Program program = datalog::ParseDatalog(rules);
    for (int c = 0; c < k; ++c) {
      std::string e = "e" + std::to_string(c);
      for (const Tuple& t : components[c]) program.AddFact(e, t);
    }
    datalog::EvalOptions options;
    options.num_threads = threads;
    datalog::EvalStats stats;
    std::map<std::string, Relation> all =
        datalog::Evaluate(program, options, &stats);
    benchmark::DoNotOptimize(all.size());
    state.counters["units"] = static_cast<double>(stats.units);
    state.counters["tasks"] = static_cast<double>(stats.par_tasks);
  }
}
BENCHMARK(BM_TC_ParComponents)
    ->ArgNames({"n", "components", "threads"})
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (int64_t threads : {1, 2, 4, 8}) {
        b->Args({96, 4, threads});
      }
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
