// Shared helpers for the benchmark binaries.

#ifndef REL_BENCH_BENCH_COMMON_H_
#define REL_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "data/tuple.h"

namespace rel {
namespace bench {

/// Bulk-loads `relations` into `engine` as base relations. (The engine is
/// populated in place: since the serving redesign an Engine owns mutexes
/// and is neither copyable nor movable.)
inline void LoadEngine(
    Engine& engine,
    const std::vector<std::pair<std::string, const std::vector<Tuple>*>>&
        relations) {
  for (const auto& [name, tuples] : relations) {
    engine.Insert(name, *tuples);
  }
}

}  // namespace bench
}  // namespace rel

#endif  // REL_BENCH_BENCH_COMMON_H_
