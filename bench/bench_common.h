// Shared helpers for the benchmark binaries.

#ifndef REL_BENCH_BENCH_COMMON_H_
#define REL_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "data/tuple.h"

namespace rel {
namespace bench {

/// Builds an engine with `relations` bulk-loaded as base relations.
inline Engine MakeEngine(
    const std::vector<std::pair<std::string, const std::vector<Tuple>*>>&
        relations) {
  Engine engine;
  for (const auto& [name, tuples] : relations) {
    engine.Insert(name, *tuples);
  }
  return engine;
}

}  // namespace bench
}  // namespace rel

#endif  // REL_BENCH_BENCH_COMMON_H_
