// Demand transformation (magic sets) — point and cone queries against the
// full-closure baseline, at the Datalog layer and end to end through the
// Rel engine.
//
// Series: left-linear transitive closure over chain, random and grid
// graphs. The full-closure baseline evaluates the entire O(n^2)-ish
// extent and filters; the demanded series rewrite the program for the goal
// (EvalOptions::demand_goal / InterpOptions::demand_transform) and derive
// only the cone. The acceptance shape: the point query tc(0, Y) on the
// chain at n=256 derives >= 10x fewer tuples and runs >= 5x faster than
// the full closure, with the demanded extent byte-identical to the
// goal-filtered full fixpoint (the `identical` counter, checked once per
// series outside the timing loop).

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "datalog/eval.h"
#include "datalog/magic.h"

namespace rel {
namespace {

// Left-linear TC: demand on tc(0, Y) stays a single-source cone (the
// right-linear form would demand every reachable source).
constexpr char kTCDatalog[] =
    "tc(X,Y) :- edge(X,Y). tc(X,Z) :- tc(X,Y), edge(Y,Z).";

constexpr char kTCRelPoint[] =
    "def tc(x,y) : edge(x,y)\n"
    "def tc(x,z) : exists((y) | tc(x,y) and edge(y,z))\n"
    "def output(y) : tc(0, y)";

/// shape: 0 = chain, 1 = random (m = 3n), 2 = grid (floor(sqrt(n))^2).
std::vector<Tuple> GraphFor(const benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  switch (state.range(1)) {
    case 0:
      return benchutil::ChainGraph(n);
    case 1:
      return benchutil::RandomGraph(n, 3 * n, /*seed=*/42);
    default: {
      int k = 1;
      while ((k + 1) * (k + 1) <= n) ++k;
      return benchutil::GridGraph(k, k);
    }
  }
}

datalog::Program MakeProgram(const std::vector<Tuple>& edges) {
  datalog::Program p = datalog::ParseDatalog(kTCDatalog);
  for (const Tuple& e : edges) p.AddFact("edge", e);
  return p;
}

void ApplyShapes(benchmark::internal::Benchmark* b) {
  for (int64_t shape : {0, 1, 2}) {
    for (int64_t n : {64, 128, 256}) {
      b->Args({n, shape});
    }
  }
  b->ArgNames({"n", "shape"});
}

/// One-time differential check for a demanded series: the demanded extent
/// must equal the goal-filtered full fixpoint byte for byte.
double DemandIsIdentical(const std::vector<Tuple>& edges,
                         const std::vector<std::optional<Value>>& pattern) {
  Relation full =
      datalog::EvaluatePredicate(MakeProgram(edges), "tc",
                                 datalog::EvalOptions{});
  datalog::EvalOptions demand;
  demand.demand_goal = datalog::DemandGoal{"tc", pattern};
  Relation cone =
      datalog::EvaluatePredicate(MakeProgram(edges), "tc", demand);
  Relation filtered = datalog::FilterByPattern(full, pattern);
  return cone.ToString() == filtered.ToString() ? 1.0 : 0.0;
}

void BM_TCFullClosure(benchmark::State& state) {
  // Baseline: derive the whole closure, then filter for the point query.
  std::vector<Tuple> edges = GraphFor(state);
  std::vector<std::optional<Value>> pattern = {Value::Int(0), std::nullopt};
  for (auto _ : state) {
    datalog::Program p = MakeProgram(edges);
    datalog::EvalStats stats;
    Relation tc =
        datalog::EvaluatePredicate(p, "tc", datalog::EvalOptions{}, &stats);
    Relation answers = datalog::FilterByPattern(tc, pattern);
    benchmark::DoNotOptimize(answers.size());
    state.counters["derived"] = static_cast<double>(stats.tuples_derived);
    state.counters["tuples"] = static_cast<double>(answers.size());
  }
}
BENCHMARK(BM_TCFullClosure)->Apply(ApplyShapes)->Unit(benchmark::kMillisecond);

void BM_TCMagicPoint(benchmark::State& state) {
  // Demanded: tc(0, Y) through the magic-set rewrite.
  std::vector<Tuple> edges = GraphFor(state);
  std::vector<std::optional<Value>> pattern = {Value::Int(0), std::nullopt};
  state.counters["identical"] = DemandIsIdentical(edges, pattern);
  for (auto _ : state) {
    datalog::Program p = MakeProgram(edges);
    datalog::EvalOptions options;
    options.demand_goal = datalog::DemandGoal{"tc", pattern};
    datalog::EvalStats stats;
    Relation answers = datalog::EvaluatePredicate(p, "tc", options, &stats);
    benchmark::DoNotOptimize(answers.size());
    state.counters["derived"] = static_cast<double>(stats.tuples_derived);
    state.counters["magic_facts"] = static_cast<double>(stats.magic_facts);
    state.counters["tuples"] = static_cast<double>(answers.size());
  }
}
BENCHMARK(BM_TCMagicPoint)->Apply(ApplyShapes)->Unit(benchmark::kMillisecond);

void BM_TCMagicAllBound(benchmark::State& state) {
  // All-bound goal: tc(0, n-1) degenerates to a reachability check.
  std::vector<Tuple> edges = GraphFor(state);
  int64_t target = state.range(0) - 1;
  std::vector<std::optional<Value>> pattern = {Value::Int(0),
                                               Value::Int(target)};
  state.counters["identical"] = DemandIsIdentical(edges, pattern);
  for (auto _ : state) {
    datalog::Program p = MakeProgram(edges);
    datalog::EvalOptions options;
    options.demand_goal = datalog::DemandGoal{"tc", pattern};
    datalog::EvalStats stats;
    Relation answers = datalog::EvaluatePredicate(p, "tc", options, &stats);
    benchmark::DoNotOptimize(answers.size());
    state.counters["derived"] = static_cast<double>(stats.tuples_derived);
    state.counters["tuples"] = static_cast<double>(answers.size());
  }
}
BENCHMARK(BM_TCMagicAllBound)
    ->Apply(ApplyShapes)
    ->Unit(benchmark::kMillisecond);

void RunRelPointQuery(benchmark::State& state, bool demand_transform) {
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"edge", &edges}});
    engine.options().demand_transform = demand_transform;
    Relation out = engine.Query(kTCRelPoint);
    benchmark::DoNotOptimize(out.size());
    state.counters["tuples"] = static_cast<double>(out.size());
    state.counters["demanded"] = static_cast<double>(
        engine.last_lowering_stats().components_demanded);
  }
}

void BM_RelPointQuery_Full(benchmark::State& state) {
  // End to end through the Rel engine, full extent (demand off).
  RunRelPointQuery(state, /*demand_transform=*/false);
}
BENCHMARK(BM_RelPointQuery_Full)
    ->Apply(ApplyShapes)
    ->Unit(benchmark::kMillisecond);

void BM_RelPointQuery_Demand(benchmark::State& state) {
  // Same query with InterpOptions::demand_transform on: the solver hands
  // the binding pattern of tc(0, y) to the interpreter, which evaluates
  // just the demanded cone.
  RunRelPointQuery(state, /*demand_transform=*/true);
}
BENCHMARK(BM_RelPointQuery_Demand)
    ->Apply(ApplyShapes)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
