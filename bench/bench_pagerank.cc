// E8 — PageRank with a stop condition (Section 5.4): the non-stratified
// recursion through `empty`/`not stop`, vs the level-indexed recursive-sum
// formulation on the lowered Datalog engine (and the same program on the
// interpreter), vs the handwritten iteration.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(8)->Arg(16)->Arg(32)->ArgName("n");
}

void BM_PageRank_Rel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> g = benchutil::StochasticMatrix(n, 3, 11);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"G", &g}});
    Relation out = engine.Query("def output : PageRank[G]");
    benchmark::DoNotOptimize(out.size());
    state.counters["entries"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_PageRank_Rel)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

// Level-indexed power iteration as one recursive sum (Section 5.2): rank
// at step t sums the scaled ranks of in-neighbors at t - 1, with the unit
// start mass as an extra contribution row at t = 0. Every contribution to
// a level's groups arrives in one semi-naive round, so the engine's
// emit-once guard for recursive sums never fires and the component takes
// the fast path.
std::string PageRankSumSource(int n, int steps) {
  return "def pr(v, t, r) : r = sum[(u, x) :\n"
         "    (t = 0 and u = 0 and range(1, " + std::to_string(n) +
         ", 1, v) and x = 1.0) or\n"
         "    (range(1, " + std::to_string(steps) +
         ", 1, t) and exists((s, rr, w) |\n"
         "        s = t - 1 and G(v, u, w) and pr(u, s, rr) and\n"
         "        x = w * rr))]\n"
         "def output(v, r) : pr(v, " + std::to_string(steps) + ", r)";
}

void RunPageRankSum(benchmark::State& state, bool lower) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> g = benchutil::StochasticMatrix(n, 3, 11);
  std::string source = PageRankSumSource(n, /*steps=*/10);
  for (auto _ : state) {
    Engine engine;
    engine.options().lower_recursion = lower;
    bench::LoadEngine(engine, {{"G", &g}});
    Relation out = engine.Query(source);
    if (lower && engine.last_lowering_stats().components_lowered < 1) {
      state.SkipWithError("recursive-sum component did not lower");
      return;
    }
    benchmark::DoNotOptimize(out.size());
    state.counters["entries"] = static_cast<double>(out.size());
  }
}

void BM_PageRank_RelSumLowered(benchmark::State& state) {
  RunPageRankSum(state, /*lower=*/true);
}
BENCHMARK(BM_PageRank_RelSumLowered)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_PageRank_RelSumInterp(benchmark::State& state) {
  RunPageRankSum(state, /*lower=*/false);
}
BENCHMARK(BM_PageRank_RelSumInterp)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_PageRank_Handwritten(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> g = benchutil::StochasticMatrix(n, 3, 11);
  for (auto _ : state) {
    int iters = 0;
    std::vector<double> p = benchutil::PageRankRef(n, g, 0.005, &iters);
    benchmark::DoNotOptimize(p.size());
    state.counters["iterations"] = iters;
  }
}
BENCHMARK(BM_PageRank_Handwritten)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
