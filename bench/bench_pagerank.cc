// E8 — PageRank with a stop condition (Section 5.4): the non-stratified
// recursion through `empty`/`not stop`, vs the handwritten iteration.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(8)->Arg(16)->Arg(32)->ArgName("n");
}

void BM_PageRank_Rel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> g = benchutil::StochasticMatrix(n, 3, 11);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"G", &g}});
    Relation out = engine.Query("def output : PageRank[G]");
    benchmark::DoNotOptimize(out.size());
    state.counters["entries"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_PageRank_Rel)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_PageRank_Handwritten(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> g = benchutil::StochasticMatrix(n, 3, 11);
  for (auto _ : state) {
    int iters = 0;
    std::vector<double> p = benchutil::PageRankRef(n, g, 0.005, &iters);
    benchmark::DoNotOptimize(p.size());
    state.counters["iterations"] = iters;
  }
}
BENCHMARK(BM_PageRank_Handwritten)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
