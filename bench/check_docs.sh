#!/usr/bin/env bash
# Docs reference check: the architecture docs must not point at files that
# no longer exist. Scans ARCHITECTURE.md, every src/*/README.md and
# bench/README.md for repo-relative paths (src/..., bench/..., tests/...,
# examples/..., .github/...) and fails if any referenced path is missing —
# the CI step that keeps docs honest across refactors.
#
# Conventions the docs follow so the check stays simple:
#   * reference real single files or directories (no `index.{h,cc}` brace
#     shorthand, no globs);
#   * trailing punctuation after a path is fine (stripped here).

set -euo pipefail
cd "$(dirname "$0")/.."

REQUIRED=(ARCHITECTURE.md src/data/README.md src/datalog/README.md
          src/fuzz/README.md bench/README.md)
DOCS=(ARCHITECTURE.md bench/README.md)
while IFS= read -r f; do DOCS+=("$f"); done \
  < <(find src -maxdepth 2 -name README.md | sort)

status=0
for doc in "${REQUIRED[@]}"; do
  if [[ ! -f "$doc" ]]; then
    echo "FAIL: required doc is missing: $doc"
    status=1
  fi
done

for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || continue
  # Lookbehind: don't treat the tail of an absolute path (/tmp/bench/...)
  # as a repo-relative reference.
  refs=$(grep -oP '(?<![A-Za-z0-9_/-])(src|bench|tests|examples|\.github)/[A-Za-z0-9_./-]+' \
           "$doc" | sort -u || true)
  while IFS= read -r ref; do
    [[ -z "$ref" ]] && continue
    # Strip punctuation that belongs to the prose, not the path.
    while [[ "$ref" == *. || "$ref" == *, ]]; do ref="${ref%?}"; done
    if [[ ! -e "$ref" ]]; then
      echo "FAIL: $doc references missing path: $ref"
      status=1
    fi
  done <<< "$refs"
done

if [[ $status -eq 0 ]]; then
  echo "docs-check OK: all referenced paths exist"
fi
exit $status
