// E13 — durability (src/storage): the price of the write-ahead log on the
// transaction commit path, how group commit amortizes fsync, and how fast
// recovery replays a WAL tail. The commit benchmarks run against real files
// (PosixFileSystem on a scratch directory) so fsync cost is the measured
// thing; replay runs on the in-memory file system so it measures decoding
// and application, not disk caches.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "bench_common.h"
#include "storage/file.h"
#include "storage/store.h"

namespace rel {
namespace {

/// A scratch directory that exists for one benchmark run.
class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "/tmp/rel_bench_wal_XXXXXX";
    char* made = mkdtemp(tmpl);
    dir_ = made != nullptr ? made : "/tmp/rel_bench_wal_fallback";
  }
  ~ScratchDir() {
    std::string cmd = "rm -rf '" + dir_ + "'";
    int rc = std::system(cmd.c_str());
    (void)rc;
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

std::string InsertOne(int64_t v) {
  return "def insert(:Numbers, x) : x = " + std::to_string(v);
}

/// Baseline: the same single-tuple transaction with no storage attached.
void BM_Commit_InMemory(benchmark::State& state) {
  Engine engine;
  int64_t v = 0;
  for (auto _ : state) {
    TxnResult txn = engine.Exec(InsertOne(++v));
    benchmark::DoNotOptimize(txn.inserted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Commit_InMemory)->Unit(benchmark::kMicrosecond);

/// WAL-backed commit; arg 0 toggles fsync-on-commit.
void BM_Commit_Durable(benchmark::State& state) {
  ScratchDir scratch;
  storage::DurabilityOptions opts;
  opts.fsync_on_commit = state.range(0) != 0;
  Engine engine;
  if (!engine.AttachStorage(scratch.path() + "/db", opts).status.ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  int64_t v = 0;
  for (auto _ : state) {
    TxnResult txn = engine.Exec(InsertOne(++v));
    benchmark::DoNotOptimize(txn.txn_id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Commit_Durable)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("fsync")
    ->Unit(benchmark::kMicrosecond);

/// fsync every Nth commit: the group-commit latency/durability dial.
void BM_Commit_GroupCommit(benchmark::State& state) {
  ScratchDir scratch;
  storage::DurabilityOptions opts;
  opts.group_commit = static_cast<int>(state.range(0));
  Engine engine;
  if (!engine.AttachStorage(scratch.path() + "/db", opts).status.ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  int64_t v = 0;
  for (auto _ : state) {
    TxnResult txn = engine.Exec(InsertOne(++v));
    benchmark::DoNotOptimize(txn.txn_id);
  }
  Status s = engine.FlushWal();  // the tail group still becomes durable
  if (!s.ok()) state.SkipWithError("flush failed");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Commit_GroupCommit)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->ArgName("batch")
    ->Unit(benchmark::kMicrosecond);

/// Recovery throughput: replay a WAL of n single-tuple transactions into a
/// fresh engine. The disk image is built once, in memory; each iteration
/// recovers from a pristine copy.
void BM_RecoveryReplay(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::map<std::string, std::string> image;
  {
    auto fs = std::make_shared<storage::MemFileSystem>();
    Engine writer;
    if (!writer.AttachStorage("db", {}, fs).status.ok()) {
      state.SkipWithError("attach failed");
      return;
    }
    for (int i = 1; i <= n; ++i) writer.Exec(InsertOne(i));
    image = fs->FilesAsIs();
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    Engine engine;
    storage::RecoveryReport report = engine.AttachStorage(
        "db", {}, std::make_shared<storage::MemFileSystem>(image));
    if (!report.status.ok() || report.replayed_txns != uint64_t(n)) {
      state.SkipWithError("recovery mismatch");
      return;
    }
    replayed += report.replayed_txns;
    benchmark::DoNotOptimize(engine.Base("Numbers").size());
  }
  state.counters["txns"] =
      benchmark::Counter(static_cast<double>(replayed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecoveryReplay)
    ->Arg(64)
    ->Arg(512)
    ->ArgName("n")
    ->Unit(benchmark::kMillisecond);

/// Recovery from a snapshot instead of a long WAL: what checkpointing buys.
void BM_RecoveryFromSnapshot(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::map<std::string, std::string> image;
  {
    auto fs = std::make_shared<storage::MemFileSystem>();
    Engine writer;
    if (!writer.AttachStorage("db", {}, fs).status.ok()) {
      state.SkipWithError("attach failed");
      return;
    }
    for (int i = 1; i <= n; ++i) writer.Exec(InsertOne(i));
    if (!writer.Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
    image = fs->FilesAsIs();
  }
  for (auto _ : state) {
    Engine engine;
    storage::RecoveryReport report = engine.AttachStorage(
        "db", {}, std::make_shared<storage::MemFileSystem>(image));
    if (!report.status.ok() || report.replayed_txns != 0) {
      state.SkipWithError("recovery mismatch");
      return;
    }
    benchmark::DoNotOptimize(engine.Base("Numbers").size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecoveryFromSnapshot)
    ->Arg(64)
    ->Arg(512)
    ->ArgName("n")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
