// Recursion lowering — recursive Rel workloads through the full Engine,
// before/after the Datalog-lowering pass (src/core/lowering.h).
//
// Series: transitive closure over chain and random graphs, written as
// first-order recursive Rel rules and evaluated end to end by Engine::Query
// with the lowering disabled (the tuple-at-a-time Interp saturation loop)
// and enabled (the planned, indexed semi-naive Datalog evaluator),
// sequentially and on a 4-worker pool. The acceptance shape: at n=128 the
// lowered path is well over 2x the Interp fallback single-threaded, with
// further scaling from threads on the random graphs (the chain shape stays
// barrier-dominated, as in bench_par).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "benchutil/generators.h"

namespace rel {
namespace {

constexpr char kTCProgram[] =
    "def tc(x,y) : E(x,y)\n"
    "def tc(x,z) : exists((y) | E(x,y) and tc(y,z))\n"
    "def output : tc";

std::vector<Tuple> GraphFor(const benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool chain = state.range(1) == 0;
  return chain ? benchutil::ChainGraph(n)
               : benchutil::RandomGraph(n, 3 * n, /*seed=*/42);
}

void ApplyInterpArgs(benchmark::internal::Benchmark* b) {
  // The saturation loop re-derives the whole extent every iteration
  // (O(n^2) tuples x O(n) rounds on the chain), so the fallback series
  // stops at 128 — already seconds there.
  for (int64_t shape : {0, 1}) {
    for (int64_t n : {16, 32, 64, 128}) {
      b->Args({n, shape});
    }
  }
  b->ArgNames({"n", "random"});
}

void ApplyLoweredArgs(benchmark::internal::Benchmark* b) {
  // The lowered path keeps going: 256 shows the asymptotic separation.
  for (int64_t shape : {0, 1}) {
    for (int64_t n : {16, 32, 64, 128, 256}) {
      b->Args({n, shape});
    }
  }
  b->ArgNames({"n", "random"});
}

void RunRelTC(benchmark::State& state, bool lower_recursion,
              int num_threads) {
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"E", &edges}});
    engine.options().lower_recursion = lower_recursion;
    engine.options().num_threads = num_threads;
    Relation out = engine.Query(kTCProgram);
    benchmark::DoNotOptimize(out.size());
    state.counters["tuples"] = static_cast<double>(out.size());
    state.counters["lowered"] = static_cast<double>(
        engine.last_lowering_stats().components_lowered);
  }
}

void BM_LowerTC_Interp(benchmark::State& state) {
  // Before: the tuple-at-a-time fixpoint (lowering disabled).
  RunRelTC(state, /*lower_recursion=*/false, /*num_threads=*/1);
}
BENCHMARK(BM_LowerTC_Interp)
    ->Apply(ApplyInterpArgs)
    ->Unit(benchmark::kMillisecond);

void BM_LowerTC_Lowered(benchmark::State& state) {
  // After: the same program, recursion lowered onto the Datalog engine.
  RunRelTC(state, /*lower_recursion=*/true, /*num_threads=*/1);
}
BENCHMARK(BM_LowerTC_Lowered)
    ->Apply(ApplyLoweredArgs)
    ->Unit(benchmark::kMillisecond);

void BM_LowerTC_LoweredPar4(benchmark::State& state) {
  // After, on a 4-worker pool (EvalOptions::num_threads inherited from
  // InterpOptions::num_threads through the lowering).
  RunRelTC(state, /*lower_recursion=*/true, /*num_threads=*/4);
}
BENCHMARK(BM_LowerTC_LoweredPar4)
    ->Apply(ApplyLoweredArgs)
    ->Unit(benchmark::kMillisecond);

void BM_LowerSameGen_Interp(benchmark::State& state) {
  // A second recursive shape (same-generation): two probes per recursive
  // step, quadratic extent.
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"par", &edges}});
    engine.options().lower_recursion = state.range(2) != 0;
    Relation out = engine.Query(
        "def sg(x,y) : exists((p) | par(p,x) and par(p,y) and x != y)\n"
        "def sg(x,y) : exists((a,b) | par(a,x) and par(b,y) and sg(a,b))\n"
        "def output : sg");
    benchmark::DoNotOptimize(out.size());
    state.counters["tuples"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_LowerSameGen_Interp)
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->ArgNames({"n", "random", "lowered"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
