// E10 — GNF vs wide-record modeling (Section 2).
//
// Workload: "total payments per order" over the Figure-1-shaped schema.
// In GNF the answer is a join of two small relations; in the denormalized
// wide table the same payment row is fanned out across order lines and must
// be de-duplicated first (the classic record-model hazard GNF avoids by
// construction). Shape: GNF competitive while also being update-friendly.

#include <benchmark/benchmark.h>

#include <set>

#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "joins/hash_join.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(200)->Arg(400)->Arg(800)->ArgName("orders");
}

benchutil::OrdersWorkload Workload(const benchmark::State& state) {
  int orders = static_cast<int>(state.range(0));
  return benchutil::MakeOrders(orders, orders / 2 + 5, 4, 3, 321);
}

void BM_OrderTotals_GNF(benchmark::State& state) {
  benchutil::OrdersWorkload w = Workload(state);
  for (auto _ : state) {
    // join PaymentOrder(payment, order) with PaymentAmount(payment, amount),
    // group by order.
    std::vector<Tuple> joined =
        joins::HashJoin(w.payment_order, {0}, w.payment_amount, {0});
    // joined: (payment, order, amount) -> group on column 1.
    std::map<Value, int64_t> totals;
    for (const Tuple& t : joined) totals[t[1]] += t[2].AsInt();
    benchmark::DoNotOptimize(totals.size());
    state.counters["groups"] = static_cast<double>(totals.size());
  }
}
BENCHMARK(BM_OrderTotals_GNF)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_OrderTotals_WideTable(benchmark::State& state) {
  benchutil::OrdersWorkload w = Workload(state);
  std::vector<Tuple> wide = benchutil::OrdersWideTable(w);
  state.counters["wide_rows"] = static_cast<double>(wide.size());
  for (auto _ : state) {
    // The wide table repeats each payment once per order line: de-duplicate
    // (order, payment) pairs before summing or the totals are wrong.
    std::set<std::pair<Value, Value>> seen;
    std::map<Value, int64_t> totals;
    for (const Tuple& t : wide) {
      if (t[4] == Value::String("")) continue;  // the NULL sentinel row
      if (seen.emplace(t[0], t[4]).second) {
        totals[t[0]] += t[5].AsInt();
      }
    }
    benchmark::DoNotOptimize(totals.size());
  }
}
BENCHMARK(BM_OrderTotals_WideTable)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_PriceUpdate_GNF(benchmark::State& state) {
  // Updating one product's price touches one GNF tuple...
  benchutil::OrdersWorkload w = Workload(state);
  for (auto _ : state) {
    std::vector<Tuple> prices = w.product_price;
    for (Tuple& t : prices) {
      if (t[0] == Value::String("P1")) t = Tuple({t[0], Value::Int(99)});
    }
    benchmark::DoNotOptimize(prices.size());
  }
}
BENCHMARK(BM_PriceUpdate_GNF)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_PriceUpdate_WideTable(benchmark::State& state) {
  // ...but every wide row carrying the product in the record model.
  benchutil::OrdersWorkload w = Workload(state);
  std::vector<Tuple> wide = benchutil::OrdersWideTable(w);
  for (auto _ : state) {
    std::vector<Tuple> updated = wide;
    for (Tuple& t : updated) {
      if (t[1] == Value::String("P1")) {
        t = Tuple({t[0], t[1], t[2], Value::Int(99), t[4], t[5]});
      }
    }
    benchmark::DoNotOptimize(updated.size());
  }
}
BENCHMARK(BM_PriceUpdate_WideTable)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
