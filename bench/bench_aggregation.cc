// E7 — aggregation under set semantics (Section 5.2): grouped sums over the
// order/payment workload, in Rel (grouping via partial application in the
// head) vs the handwritten group-by.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(50)->Arg(100)->Arg(200)->ArgName("orders");
}

benchutil::OrdersWorkload Workload(const benchmark::State& state) {
  int orders = static_cast<int>(state.range(0));
  return benchutil::MakeOrders(orders, orders / 2 + 5, 4, 3, 123);
}

void BM_GroupedSum_Rel(benchmark::State& state) {
  benchutil::OrdersWorkload w = Workload(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {
        {"OrderProductQuantity", &w.order_product_quantity},
        {"PaymentOrder", &w.payment_order},
        {"PaymentAmount", &w.payment_amount},
    });
    Relation out = engine.Query(
        "def Ord(x) : OrderProductQuantity(x,_,_)\n"
        "def OrderPaymentAmount(x,y,z) :\n"
        "  PaymentOrder(y,x) and PaymentAmount(y,z)\n"
        "def OrderPaid[x in Ord] : sum[OrderPaymentAmount[x]] <++ 0\n"
        "def output : OrderPaid");
    benchmark::DoNotOptimize(out.size());
    state.counters["groups"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_GroupedSum_Rel)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_GroupedSum_RelLowered(benchmark::State& state) {
  // The aggregate head form the lowering routes onto the planned engine
  // (groups with no payments produce no row, unlike the <++ 0 default of
  // the series above — a deliberate shape difference, not a bug).
  benchutil::OrdersWorkload w = Workload(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {
        {"OrderProductQuantity", &w.order_product_quantity},
        {"PaymentOrder", &w.payment_order},
        {"PaymentAmount", &w.payment_amount},
    });
    Relation out = engine.Query(
        "def OrderPaid(x, s) : s = sum[(y, z) :\n"
        "    PaymentOrder(y, x) and PaymentAmount(y, z)]\n"
        "def output : OrderPaid");
    if (engine.last_lowering_stats().components_lowered < 1) {
      state.SkipWithError("grouped-sum component did not lower");
      return;
    }
    benchmark::DoNotOptimize(out.size());
    state.counters["groups"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_GroupedSum_RelLowered)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_GroupedSum_Handwritten(benchmark::State& state) {
  benchutil::OrdersWorkload w = Workload(state);
  for (auto _ : state) {
    // Join payment_order with payment_amount, then group by order.
    std::map<Value, Value> amounts;
    for (const Tuple& t : w.payment_amount) amounts.emplace(t[0], t[1]);
    std::vector<Tuple> joined;
    joined.reserve(w.payment_order.size());
    for (const Tuple& t : w.payment_order) {
      joined.push_back(Tuple({t[1], amounts.at(t[0])}));
    }
    auto grouped = benchutil::GroupSumRef(joined);
    benchmark::DoNotOptimize(grouped.size());
  }
}
BENCHMARK(BM_GroupedSum_Handwritten)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_CountDistinct_Rel(benchmark::State& state) {
  // Set semantics makes COUNT(DISTINCT ...) the default count (Section 5.2).
  benchutil::OrdersWorkload w = Workload(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, 
        {{"OrderProductQuantity", &w.order_product_quantity}});
    Relation out = engine.Query(
        "def output : count[(p) : OrderProductQuantity(_, p, _)]");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CountDistinct_Rel)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
