// E6 — transitive closure (Section 3.3's recursion workload).
//
// Series: the Rel engine, the baseline Datalog engine (indexed semi-naive,
// scan-based semi-naive, and naive), and the handwritten BFS reference, over
// chain and random graphs. Expected shape: handwritten < datalog indexed <
// datalog semi-naive scan < datalog naive; the Rel engine pays its
// generality (tuple-at-a-time solving, higher-order machinery) but follows
// the same asymptotics. The PR-gated 5x criterion is indexed-vs-naive
// (~70x at n=64); the indexed-vs-scan gap isolates the access path alone
// (~2-4x here, growing with n).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "datalog/eval.h"

namespace rel {
namespace {

std::vector<Tuple> GraphFor(const benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool chain = state.range(1) == 0;
  return chain ? benchutil::ChainGraph(n)
               : benchutil::RandomGraph(n, 3 * n, /*seed=*/42);
}

void ApplyGraphArgs(benchmark::internal::Benchmark* b) {
  // 128 exceeds the seed sizes to make the indexed-vs-scan asymptotic gap
  // visible; the Rel-engine series keeps the smaller sizes only.
  for (int64_t shape : {0, 1}) {
    for (int64_t n : {16, 32, 64, 128}) {
      b->Args({n, shape});
    }
  }
  b->ArgNames({"n", "random"});
}

void ApplyRelGraphArgs(benchmark::internal::Benchmark* b) {
  for (int64_t shape : {0, 1}) {
    for (int64_t n : {16, 32, 64}) {
      b->Args({n, shape});
    }
  }
  b->ArgNames({"n", "random"});
}

void BM_TC_Rel(benchmark::State& state) {
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"E", &edges}});
    Relation out = engine.Query(
        "def tc(x,y) : E(x,y)\n"
        "def tc(x,y) : exists((z) | E(x,z) and tc(z,y))\n"
        "def output : tc");
    benchmark::DoNotOptimize(out.size());
    state.counters["tuples"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_TC_Rel)->Apply(ApplyRelGraphArgs)->Unit(benchmark::kMillisecond);

void BM_TC_RelStdlibTC(benchmark::State& state) {
  // The same closure through the stdlib's second-order TC[E].
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"E", &edges}});
    Relation out = engine.Query("def output : TC[E]");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TC_RelStdlibTC)
    ->Apply(ApplyRelGraphArgs)
    ->Unit(benchmark::kMillisecond);

void RunDatalogTC(benchmark::State& state, datalog::Strategy strategy,
                  int num_threads = 1) {
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    datalog::Program program = datalog::ParseDatalog(
        "tc(X,Y) :- edge(X,Y). tc(X,Z) :- edge(X,Y), tc(Y,Z).");
    for (const Tuple& e : edges) program.AddFact("edge", e);
    datalog::EvalOptions options;
    options.strategy = strategy;
    options.num_threads = num_threads;
    datalog::EvalStats stats;
    Relation tc =
        datalog::EvaluatePredicate(program, "tc", options, &stats);
    benchmark::DoNotOptimize(tc.size());
    state.counters["derived"] = static_cast<double>(stats.tuples_derived);
    state.counters["probes"] = static_cast<double>(stats.index_probes);
    state.counters["scans"] = static_cast<double>(stats.full_scans);
  }
}

void BM_TC_DatalogSemiNaive(benchmark::State& state) {
  RunDatalogTC(state, datalog::Strategy::kSemiNaive);
}
BENCHMARK(BM_TC_DatalogSemiNaive)
    ->Apply(ApplyGraphArgs)
    ->Unit(benchmark::kMillisecond);

void BM_TC_DatalogSemiNaiveScan(benchmark::State& state) {
  // Ablation: the pre-index nested-loop evaluator on the same iteration
  // schedule — isolates the access-path win from the delta discipline.
  RunDatalogTC(state, datalog::Strategy::kSemiNaiveScan);
}
BENCHMARK(BM_TC_DatalogSemiNaiveScan)
    ->Apply(ApplyGraphArgs)
    ->Unit(benchmark::kMillisecond);

void BM_TC_DatalogNaive(benchmark::State& state) {
  RunDatalogTC(state, datalog::Strategy::kNaive);
}
BENCHMARK(BM_TC_DatalogNaive)
    ->Apply(ApplyGraphArgs)
    ->Unit(benchmark::kMillisecond);

void BM_TC_DatalogSemiNaivePar4(benchmark::State& state) {
  // The indexed evaluator on a 4-worker pool (chunked delta drivers,
  // per-thread staging). The full thread-scaling matrix lives in
  // bench_par; this series keeps one parallel point in the tc trajectory.
  RunDatalogTC(state, datalog::Strategy::kSemiNaive, /*num_threads=*/4);
}
BENCHMARK(BM_TC_DatalogSemiNaivePar4)
    ->Apply(ApplyGraphArgs)
    ->Unit(benchmark::kMillisecond);

void BM_TC_HandwrittenBFS(benchmark::State& state) {
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    auto closure = benchutil::TransitiveClosureRef(edges);
    benchmark::DoNotOptimize(closure.size());
  }
}
BENCHMARK(BM_TC_HandwrittenBFS)
    ->Apply(ApplyGraphArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
