// E5 — all-pairs shortest paths (the Section 1 teaser and Section 5.4).
//
// Series: the Rel stdlib APSP (aggregation formulation), the guarded
// formulation, the first-order recursive-min formulation on the lowered
// Datalog engine vs the same program on the interpreter, the baseline
// Datalog engine with bounded path derivation + post-hoc minimum, and the
// handwritten BFS.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"
#include "datalog/eval.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(8)->Arg(12)->Arg(16)->ArgName("n");
}

void BM_APSP_Rel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> edges = benchutil::RandomGraph(n, 3 * n, 7);
  std::vector<Tuple> nodes = benchutil::NodeSet(n);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"E", &edges}, {"V", &nodes}});
    Relation out = engine.Query("def output : APSP[V, E]");
    benchmark::DoNotOptimize(out.size());
    state.counters["pairs"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_APSP_Rel)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_APSP_RelGuarded(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> edges = benchutil::RandomGraph(n, 3 * n, 7);
  std::vector<Tuple> nodes = benchutil::NodeSet(n);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"E", &edges}, {"V", &nodes}});
    Relation out = engine.Query("def output : APSP_guarded[V, E]");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_APSP_RelGuarded)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

// The first-order recursive-aggregation formulation (Section 5.2): one
// disjunctive min over base edges and extension steps. This is the shape
// the aggregate lowering routes onto the Datalog engine's monotone
// semi-naive aggregate evaluation; the same source on the interpreter runs
// replacement iteration.
const char kApspAggSource[] =
    "def apsp(x, y, d) : d = min[(j) :\n"
    "    E(x, y, j) or\n"
    "    exists((z, j1, j2) | E(x, z, j1) and apsp(z, y, j2) and\n"
    "        j = j1 + j2)]\n"
    "def output : apsp";

std::vector<Tuple> WeightedEdges(int n) {
  std::vector<Tuple> edges;
  for (const Tuple& e : benchutil::RandomGraph(n, 3 * n, 7)) {
    int64_t w = (e[0].AsInt() * 7 + e[1].AsInt() * 3) % 5 + 1;
    edges.push_back(Tuple({e[0], e[1], Value::Int(w)}));
  }
  return edges;
}

void RunApspAgg(benchmark::State& state, bool lower) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> edges = WeightedEdges(n);
  for (auto _ : state) {
    Engine engine;
    engine.options().lower_recursion = lower;
    bench::LoadEngine(engine, {{"E", &edges}});
    Relation out = engine.Query(kApspAggSource);
    if (lower && engine.last_lowering_stats().components_lowered < 1) {
      state.SkipWithError("recursive-min component did not lower");
      return;
    }
    benchmark::DoNotOptimize(out.size());
    state.counters["pairs"] = static_cast<double>(out.size());
  }
}

void BM_APSP_RelAggLowered(benchmark::State& state) {
  RunApspAgg(state, /*lower=*/true);
}
BENCHMARK(BM_APSP_RelAggLowered)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_APSP_RelAggInterp(benchmark::State& state) {
  RunApspAgg(state, /*lower=*/false);
}
BENCHMARK(BM_APSP_RelAggInterp)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void RunApspDatalog(benchmark::State& state, datalog::Strategy strategy) {
  // The classical encoding: derive bounded path lengths, then take the
  // minimum per pair outside the engine (classical Datalog lacks
  // aggregation — one of the gaps Rel closes, Section 5.2).
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> edges = benchutil::RandomGraph(n, 3 * n, 7);
  std::string bound = std::to_string(n);
  for (auto _ : state) {
    datalog::Program program = datalog::ParseDatalog(
        "path(X, Y, D) :- edge(X, Y), D = 1 + 0.\n"
        "path(X, Z, D) :- path(X, Y, E), edge(Y, Z), D = E + 1, E < " +
        bound + ".");
    for (const Tuple& e : edges) program.AddFact("edge", e);
    datalog::EvalStats stats;
    Relation paths =
        datalog::EvaluatePredicate(program, "path", strategy, &stats);
    std::map<std::pair<int64_t, int64_t>, int64_t> best;
    for (const Tuple& t : paths.TuplesOfArity(3)) {
      auto key = std::make_pair(t[0].AsInt(), t[1].AsInt());
      auto it = best.find(key);
      if (it == best.end() || t[2].AsInt() < it->second) {
        best[key] = t[2].AsInt();
      }
    }
    benchmark::DoNotOptimize(best.size());
    state.counters["probes"] = static_cast<double>(stats.index_probes);
    state.counters["scans"] = static_cast<double>(stats.full_scans);
  }
}

void BM_APSP_Datalog(benchmark::State& state) {
  RunApspDatalog(state, datalog::Strategy::kSemiNaive);
}
BENCHMARK(BM_APSP_Datalog)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_APSP_DatalogScan(benchmark::State& state) {
  // Ablation: same iteration schedule, nested-loop scans instead of probes.
  RunApspDatalog(state, datalog::Strategy::kSemiNaiveScan);
}
BENCHMARK(BM_APSP_DatalogScan)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_APSP_HandwrittenBFS(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> edges = benchutil::RandomGraph(n, 3 * n, 7);
  for (auto _ : state) {
    auto dist = benchutil::ApspRef(n, edges);
    benchmark::DoNotOptimize(dist.size());
  }
}
BENCHMARK(BM_APSP_HandwrittenBFS)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
