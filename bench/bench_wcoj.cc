// E9 — worst-case optimal joins (Sections 2 and 7): the triangle query on
// hub-skewed graphs, binary hash-join plan vs Leapfrog Triejoin.
//
// Expected shape: on skewed graphs the binary plan materializes a quadratic
// intermediate (E ⋈ E) and loses by a growing factor; LFTJ stays within the
// AGM bound. This is the toolbox the paper says makes GNF's join-heavy
// modeling viable.

#include <benchmark/benchmark.h>

#include "benchutil/generators.h"
#include "datalog/eval.h"
#include "joins/hash_join.h"
#include "joins/leapfrog.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {100, 200, 400, 800}) b->Args({n, 24});
  b->ArgNames({"n", "hubs"});
}

std::vector<Tuple> GraphFor(const benchmark::State& state) {
  return benchutil::SkewedTriangleGraph(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(1)), 3);
}

void BM_Triangles_BinaryHashJoin(benchmark::State& state) {
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    size_t count = joins::CountTrianglesBinaryJoin(edges);
    benchmark::DoNotOptimize(count);
    state.counters["triangles"] = static_cast<double>(count);
  }
  state.counters["edges"] = static_cast<double>(edges.size());
}
BENCHMARK(BM_Triangles_BinaryHashJoin)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_Triangles_Leapfrog(benchmark::State& state) {
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    size_t count = joins::CountTrianglesLeapfrog(edges);
    benchmark::DoNotOptimize(count);
    state.counters["triangles"] = static_cast<double>(count);
  }
  state.counters["edges"] = static_cast<double>(edges.size());
}
BENCHMARK(BM_Triangles_Leapfrog)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_Triangles_DatalogIndexed(benchmark::State& state) {
  // The same triangle query through the Datalog engine: the planner detects
  // the all-free self-join shape and routes it through LeapfrogJoin, so the
  // declarative rule inherits the worst-case-optimal bound (plus tuple
  // materialization cost for the 3-ary head).
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    datalog::Program program = datalog::ParseDatalog(
        "tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).");
    for (const Tuple& e : edges) program.AddFact("e", e);
    datalog::EvalStats stats;
    Relation tri = datalog::EvaluatePredicate(program, "tri",
                                              datalog::Strategy::kSemiNaive,
                                              &stats);
    benchmark::DoNotOptimize(tri.size());
    state.counters["triangles"] = static_cast<double>(tri.size()) / 3.0;
    state.counters["lftj"] = static_cast<double>(stats.leapfrog_joins);
  }
  state.counters["edges"] = static_cast<double>(edges.size());
}
BENCHMARK(BM_Triangles_DatalogIndexed)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_TwoWayJoin_Hash(benchmark::State& state) {
  // Sanity series: on a plain 2-way join the binary plan is fine — the gap
  // is specific to cyclic queries.
  std::vector<Tuple> edges = GraphFor(state);
  for (auto _ : state) {
    auto out = joins::HashJoin(edges, {1}, edges, {0});
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_TwoWayJoin_Hash)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
