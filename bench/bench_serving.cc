// E13 — concurrent serving (the sessions/snapshot redesign): read
// throughput as session count grows, and reader latency while a writer
// commits transaction after transaction underneath them. Every thread is
// one Session on one shared Engine, exactly the server's execution model.

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.h"
#include "benchutil/generators.h"

namespace rel {
namespace {

constexpr int kChain = 256;  // tc over a 256-node chain

/// The engine shared by all threads of one benchmark run. Threads enter the
/// benchmark function concurrently, so construction is refcounted under a
/// mutex: the first thread in builds, the last one out tears down.
class SharedEngine {
 public:
  Engine* Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_++ == 0) {
      engine_ = std::make_unique<Engine>();
      engine_->Define(
          "def tc(x, y) : edge(x, y)\n"
          "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))");
      std::vector<Tuple> edges = benchutil::ChainGraph(kChain);
      engine_->Insert("edge", edges);
    }
    return engine_.get();
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--active_ == 0) engine_.reset();
  }

 private:
  std::mutex mu_;
  std::unique_ptr<Engine> engine_;
  int active_ = 0;
};

SharedEngine read_engine;
SharedEngine mixed_engine;

/// N sessions, all readers: each one pins a snapshot and runs demanded tc
/// cones against it (rotating the start node through the per-component
/// pattern budget, so both cold cones and session-cache hits are in the
/// mix). Scaling is the point: the per-iteration time should hold roughly
/// flat as threads grow, because pinned reads take no locks.
void BM_Serving_ReaderThroughput(benchmark::State& state) {
  Engine* engine = read_engine.Acquire();
  std::unique_ptr<Session> session = engine->OpenSession();
  session->options().demand_transform = true;
  int64_t queries = 0;
  for (auto _ : state) {
    int start = static_cast<int>(queries % 4);
    Relation out =
        session->Query("def output(y) : tc(" + std::to_string(start) + ", y)");
    benchmark::DoNotOptimize(out);
    ++queries;
  }
  state.counters["queries"] =
      benchmark::Counter(static_cast<double>(queries),
                         benchmark::Counter::kIsRate);
  read_engine.Release();
}
BENCHMARK(BM_Serving_ReaderThroughput)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Writer interference: thread 0 commits insert transactions through the
/// single-writer pipeline while every other thread reads against its pinned
/// snapshot, refreshing each iteration. Readers report their own rate; the
/// series shows what an active writer costs concurrent readers (on this
/// design: nothing but the refresh, since reads never take the writer
/// lock).
void BM_Serving_WriterInterference(benchmark::State& state) {
  Engine* engine = mixed_engine.Acquire();
  std::unique_ptr<Session> session = engine->OpenSession();
  session->options().demand_transform = true;
  int64_t ops = 0;
  if (state.thread_index() == 0) {
    // The writer: one committed transaction per iteration.
    for (auto _ : state) {
      TxnResult txn = session->Exec(
          "def insert(:W, x) : x = " + std::to_string(ops));
      benchmark::DoNotOptimize(txn.snapshot_version);
      ++ops;
    }
    state.counters["commits"] =
        benchmark::Counter(static_cast<double>(ops),
                           benchmark::Counter::kIsRate);
  } else {
    for (auto _ : state) {
      session->Refresh();
      Relation out = session->Query("def output(y) : tc(0, y)");
      benchmark::DoNotOptimize(out);
      ++ops;
    }
    state.counters["reads"] =
        benchmark::Counter(static_cast<double>(ops),
                           benchmark::Counter::kIsRate);
  }
  mixed_engine.Release();
}
BENCHMARK(BM_Serving_WriterInterference)
    ->ThreadRange(2, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
