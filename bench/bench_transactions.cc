// E12 — transactions and integrity constraints (Sections 3.4 and 3.5):
// insert/delete throughput through the control relations, with and without
// installed constraints, plus the cost of an aborting transaction.

#include <benchmark/benchmark.h>

#include <memory>

#include "base/error.h"
#include "bench_common.h"
#include "benchutil/generators.h"
#include "storage/file.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(32)->Arg(128)->Arg(512)->ArgName("tuples");
}

void BM_InsertTxn_NoConstraints(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    TxnResult txn = engine.Exec(
        "def insert(:Numbers, x) : range(1, " + std::to_string(n) +
        ", 1, x)");
    benchmark::DoNotOptimize(txn.inserted);
  }
}
BENCHMARK(BM_InsertTxn_NoConstraints)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_InsertTxn_WithConstraint(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    engine.Define(
        "ic positive_numbers() requires\n"
        "  forall((x) | Numbers(x) implies x > 0)");
    TxnResult txn = engine.Exec(
        "def insert(:Numbers, x) : range(1, " + std::to_string(n) +
        ", 1, x)");
    benchmark::DoNotOptimize(txn.inserted);
  }
}
BENCHMARK(BM_InsertTxn_WithConstraint)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_AbortingTxn(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    engine.Define(
        "ic small_numbers() requires\n"
        "  forall((x) | Numbers(x) implies x < " + std::to_string(n / 2) +
        ")");
    bool aborted = false;
    try {
      engine.Exec("def insert(:Numbers, x) : range(1, " + std::to_string(n) +
                  ", 1, x)");
    } catch (const ConstraintViolation&) {
      aborted = true;
    }
    benchmark::DoNotOptimize(aborted);
    // Rollback must leave the database empty.
    if (engine.Base("Numbers").size() != 0) state.SkipWithError("no rollback");
  }
}
BENCHMARK(BM_AbortingTxn)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

// The same insert transaction as BM_InsertTxn_NoConstraints, but with a
// durable store attached (in-memory file system, so this series tracks the
// WAL encode/append overhead of the commit pipeline, not disk speed;
// bench_wal measures real fsync cost).
void BM_InsertTxn_Durable(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    auto fs = std::make_shared<storage::MemFileSystem>();
    if (!engine.AttachStorage("db", {}, fs).status.ok()) {
      state.SkipWithError("attach failed");
      return;
    }
    TxnResult txn = engine.Exec(
        "def insert(:Numbers, x) : range(1, " + std::to_string(n) +
        ", 1, x)");
    benchmark::DoNotOptimize(txn.txn_id);
  }
}
BENCHMARK(BM_InsertTxn_Durable)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_DeleteTxn(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> numbers;
  for (int i = 1; i <= n; ++i) numbers.push_back(Tuple({Value::Int(i)}));
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"Numbers", &numbers}});
    TxnResult txn =
        engine.Exec("def delete(:Numbers, x) : Numbers(x) and x % 2 = 0");
    benchmark::DoNotOptimize(txn.deleted);
  }
}
BENCHMARK(BM_DeleteTxn)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
