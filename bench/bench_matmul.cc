// E4 — the Section 1 teaser: MatrixMult as a library definition over
// relations, vs the handwritten sparse kernel.
//
// The paper's point is expressiveness with acceptable mechanics: the Rel
// definition is one line and arity/dimension independent. The handwritten
// kernel is the speed-of-light reference.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "benchutil/reference.h"

namespace rel {
namespace {

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(8)->Arg(16)->Arg(24)->ArgName("n");
}

void BM_MatMul_Rel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> a = benchutil::SparseMatrix(n, n, 0.3, 1);
  std::vector<Tuple> b = benchutil::SparseMatrix(n, n, 0.3, 2);
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"A", &a}, {"B", &b}});
    Relation out = engine.Query("def output : MatrixMult[A, B]");
    benchmark::DoNotOptimize(out.size());
    state.counters["nnz"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_MatMul_Rel)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

void BM_MatMul_Handwritten(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Tuple> a = benchutil::SparseMatrix(n, n, 0.3, 1);
  std::vector<Tuple> b = benchutil::SparseMatrix(n, n, 0.3, 2);
  for (auto _ : state) {
    std::vector<Tuple> out = benchutil::MatMulRef(a, b);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_MatMul_Handwritten)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);

void BM_ScalarProd_Rel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0)) * 8;
  std::vector<Tuple> u, v;
  for (int i = 1; i <= n; ++i) {
    u.push_back(Tuple({Value::Int(i), Value::Float(i * 0.5)}));
    v.push_back(Tuple({Value::Int(i), Value::Float(i * 0.25)}));
  }
  for (auto _ : state) {
    Engine engine;
    bench::LoadEngine(engine, {{"U", &u}, {"V", &v}});
    Relation out = engine.Query("def output : ScalarProd[U, V]");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_ScalarProd_Rel)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
