#!/usr/bin/env bash
# Runs the benchmark binaries and distills the google-benchmark JSON into
# one machine-readable BENCH_<name>.json per bench, so the performance
# trajectory can be tracked across PRs.
#
# Usage: bench/run_bench.sh [build_dir] [out_dir] [extra benchmark flags...]
#
# Output schema (a JSON array, one object per benchmark run):
#   {
#     "bench":          "BM_TC_DatalogSemiNaive/n:64/random:1",
#     "n":              64,            // first size-like arg, null if none
#     "wall_ms":        4.2,           // real time per iteration, ms
#     "tuples_derived": 11972.0        // derived/tuples counter, null if none
#   }
# Extra per-run counters (probes, scans, triangles, ...) are passed through
# under "counters".

set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-"$BUILD_DIR/bench_json"}
shift $(( $# > 2 ? 2 : $# )) || true
EXTRA_FLAGS=("$@")

BENCHES=(bench_tc bench_apsp bench_wcoj bench_aggregation bench_gnf
         bench_matmul bench_pagerank bench_transactions)

mkdir -p "$OUT_DIR"

distill() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

def to_ms(value, unit):
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
    return value * scale.get(unit, 1e-6)

rows = []
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b.get("name", "")
    n = None
    for part in name.split("/")[1:]:
        key, _, val = part.partition(":")
        if key in ("n",) and val.lstrip("-").isdigit():
            n = int(val)
            break
        if not _ and key.lstrip("-").isdigit():  # positional arg
            n = int(key)
            break
    reserved = {
        "name", "run_name", "run_type", "family_index",
        "per_family_instance_index", "repetitions", "repetition_index",
        "threads", "iterations", "real_time", "cpu_time", "time_unit",
    }
    counters = {k: v for k, v in b.items()
                if k not in reserved and isinstance(v, (int, float))}
    derived = counters.pop("derived", None)
    if derived is None:
        derived = counters.pop("tuples", None)
    rows.append({
        "bench": name,
        "n": n,
        "wall_ms": to_ms(b.get("real_time", 0.0), b.get("time_unit", "ns")),
        "tuples_derived": derived,
        "counters": counters,
    })

with open(out_path, "w") as f:
    json.dump(rows, f, indent=1)
    f.write("\n")
EOF
}

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "skip: $bench (not built)" >&2
    continue
  fi
  raw="$OUT_DIR/${bench}.raw.json"
  out="$OUT_DIR/BENCH_${bench#bench_}.json"
  echo "running $bench ..." >&2
  if ! "$bin" --benchmark_format=json "${EXTRA_FLAGS[@]}" > "$raw" \
      || [[ ! -s "$raw" ]]; then
    echo "skip: $bench (failed or no benchmarks matched)" >&2
    rm -f "$raw"
    continue
  fi
  if command -v python3 >/dev/null 2>&1; then
    distill "$raw" "$out"
    rm -f "$raw"
  else
    # No python3: keep the raw google-benchmark JSON under the stable name.
    mv "$raw" "$out"
  fi
  echo "wrote $out" >&2
done
