#!/usr/bin/env bash
# Runs the benchmark binaries and distills the google-benchmark JSON into
# one machine-readable BENCH_<name>.json per bench, so the performance
# trajectory can be tracked across PRs.
#
# Usage: bench/run_bench.sh [build_dir] [out_dir] [options] [extra benchmark flags...]
#
# Options:
#   --benches a,b,c        Run only these benches (names without the bench_
#                          prefix, e.g. "tc,wcoj"). Default: all.
#   --compare BASELINE     After running, compare wall times against a
#                          committed baseline: a BENCH_<name>.json file (or a
#                          directory of them; each is matched to the produced
#                          file of the same name). Exits 1 if the geometric
#                          mean of the per-benchmark new/baseline wall-time
#                          ratios exceeds the threshold, or if any baseline
#                          series is missing from the new run — the CI perf
#                          gate fails closed.
#   --compare-threshold P  Allowed regression in percent (default 25, or
#                          $REL_BENCH_TOLERANCE when set).
#   --compare-normalize R  Divide the gated geomean by the geomean ratio of
#                          benchmarks matching regex R (a reference series,
#                          e.g. a handwritten baseline that tracks machine
#                          speed but not engine changes). Cancels uniform
#                          hardware deltas when the committed baseline was
#                          recorded on a different box.
#
# Output schema (a JSON array, one object per benchmark run):
#   {
#     "bench":          "BM_TC_DatalogSemiNaive/n:64/random:1",
#     "n":              64,            // first size-like arg, null if none
#     "wall_ms":        4.2,           // real time per iteration, ms
#     "tuples_derived": 11972.0        // derived/tuples counter, null if none
#   }
# Extra per-run counters (probes, scans, triangles, ...) are passed through
# under "counters".

set -euo pipefail

BENCHES=(bench_tc bench_par bench_lowering bench_magic bench_apsp bench_wcoj
         bench_aggregation bench_gnf bench_matmul bench_pagerank
         bench_transactions bench_wal bench_serving bench_incremental)

COMPARE_BASELINE=""
COMPARE_THRESHOLD="${REL_BENCH_TOLERANCE:-25}"
COMPARE_NORMALIZE=""
POSITIONAL=()
EXTRA_FLAGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --benches)
      IFS=',' read -r -a names <<< "$2"
      BENCHES=()
      for n in "${names[@]}"; do BENCHES+=("bench_${n#bench_}"); done
      shift 2
      ;;
    --compare)
      COMPARE_BASELINE=$2
      shift 2
      ;;
    --compare-threshold)
      COMPARE_THRESHOLD=$2
      shift 2
      ;;
    --compare-normalize)
      COMPARE_NORMALIZE=$2
      shift 2
      ;;
    *)
      if [[ ${#POSITIONAL[@]} -lt 2 && "$1" != -* ]]; then
        POSITIONAL+=("$1")
      else
        EXTRA_FLAGS+=("$1")
      fi
      shift
      ;;
  esac
done

BUILD_DIR=${POSITIONAL[0]:-build}
OUT_DIR=${POSITIONAL[1]:-"$BUILD_DIR/bench_json"}

mkdir -p "$OUT_DIR"

distill() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

def to_ms(value, unit):
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
    return value * scale.get(unit, 1e-6)

rows = []
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b.get("name", "")
    n = None
    for part in name.split("/")[1:]:
        key, _, val = part.partition(":")
        if key in ("n",) and val.lstrip("-").isdigit():
            n = int(val)
            break
        if not _ and key.lstrip("-").isdigit():  # positional arg
            n = int(key)
            break
    reserved = {
        "name", "run_name", "run_type", "family_index",
        "per_family_instance_index", "repetitions", "repetition_index",
        "threads", "iterations", "real_time", "cpu_time", "time_unit",
    }
    counters = {k: v for k, v in b.items()
                if k not in reserved and isinstance(v, (int, float))}
    derived = counters.pop("derived", None)
    if derived is None:
        derived = counters.pop("tuples", None)
    rows.append({
        "bench": name,
        "n": n,
        "wall_ms": to_ms(b.get("real_time", 0.0), b.get("time_unit", "ns")),
        "tuples_derived": derived,
        "counters": counters,
    })

with open(out_path, "w") as f:
    json.dump(rows, f, indent=1)
    f.write("\n")
EOF
}

# compare <baseline.json> <new.json> <threshold_pct> <normalize_regex>:
# per-benchmark ratio table plus a geometric-mean gate (the mean absorbs
# single-run noise better than an any-one-bench check). Baseline series
# missing from the new run fail the gate — a rename or a crashed fixture
# must not silently shrink what is being guarded. With a normalize regex,
# the gated geomean is divided by the reference series' geomean ratio so a
# uniform hardware speed delta between the baseline box and the CI runner
# cancels out.
compare() {
  python3 - "$1" "$2" "$3" "$4" <<'EOF'
import json, math, re, sys

base_path, new_path = sys.argv[1], sys.argv[2]
threshold, norm_regex = float(sys.argv[3]), sys.argv[4]
with open(base_path) as f:
    base = {r["bench"]: r["wall_ms"] for r in json.load(f)}
with open(new_path) as f:
    new = {r["bench"]: r["wall_ms"] for r in json.load(f)}

def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))

ratios, ref_ratios, missing, invalid = [], [], [], []
print(f"--- bench regression check vs {base_path} "
      f"(threshold +{threshold:.0f}%) ---")
for name in sorted(base):
    if name not in new:
        print(f"  MISSING  {name} (in baseline, not in new run)")
        missing.append(name)
        continue
    if base[name] <= 0 or new[name] <= 0:
        # A series must not silently drop out of the gate.
        print(f"  INVALID  {name} (non-positive wall_ms)")
        invalid.append(name)
        continue
    ratio = new[name] / base[name]
    is_ref = bool(norm_regex) and re.search(norm_regex, name) is not None
    (ref_ratios if is_ref else ratios).append(ratio)
    flag = ("  REF    " if is_ref
            else "  SLOWER " if ratio > 1 + threshold / 100 else "         ")
    print(f"{flag}{name:55s} {base[name]:9.3f} -> {new[name]:9.3f} ms "
          f"({ratio:5.2f}x)")
for name in sorted(set(new) - set(base)):
    print(f"  NEW      {name} (not in baseline)")

fail = False
if missing:
    print(f"FAIL: {len(missing)} baseline series missing from the new run")
    fail = True
if invalid:
    print(f"FAIL: {len(invalid)} series with non-positive wall_ms")
    fail = True
if not ratios:
    print("no comparable (non-reference) benchmarks; failing the gate")
    sys.exit(1)
gm = geomean(ratios)
if norm_regex:
    if not ref_ratios:
        print(f"FAIL: normalize regex '{norm_regex}' matched no series")
        sys.exit(1)
    ref = geomean(ref_ratios)
    print(f"reference series ratio: {ref:.3f}x (machine-speed calibration)")
    gm /= ref
limit = 1 + threshold / 100
print(f"gated geometric mean ratio: {gm:.3f}x (limit {limit:.2f}x)")
if gm > limit:
    print("FAIL: wall time regressed beyond the threshold")
    fail = True
if fail:
    sys.exit(1)
print("OK")
EOF
}

STATUS=0
COMPARES_RUN=0
for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "skip: $bench (not built)" >&2
    continue
  fi
  raw="$OUT_DIR/${bench}.raw.json"
  out="$OUT_DIR/BENCH_${bench#bench_}.json"
  echo "running $bench ..." >&2
  if ! "$bin" --benchmark_format=json "${EXTRA_FLAGS[@]}" > "$raw" \
      || [[ ! -s "$raw" ]]; then
    echo "skip: $bench (failed or no benchmarks matched)" >&2
    rm -f "$raw"
    continue
  fi
  if command -v python3 >/dev/null 2>&1; then
    distill "$raw" "$out"
    rm -f "$raw"
  else
    # No python3: keep the raw google-benchmark JSON under the stable name.
    mv "$raw" "$out"
  fi
  echo "wrote $out" >&2

  if [[ -n "$COMPARE_BASELINE" ]]; then
    baseline_file="$COMPARE_BASELINE"
    if [[ -d "$COMPARE_BASELINE" ]]; then
      baseline_file="$COMPARE_BASELINE/$(basename "$out")"
    fi
    if [[ "$(basename "$baseline_file")" == "$(basename "$out")" \
          && -f "$baseline_file" ]]; then
      COMPARES_RUN=$((COMPARES_RUN + 1))
      if ! compare "$baseline_file" "$out" "$COMPARE_THRESHOLD" \
                   "$COMPARE_NORMALIZE"; then
        STATUS=1
      fi
    fi
  fi
done
# The gate must fail closed: asking for a comparison that never happened
# (bench not built, run failed, baseline path matches nothing) is a failure,
# not a silent pass.
if [[ -n "$COMPARE_BASELINE" && "$COMPARES_RUN" -eq 0 ]]; then
  echo "error: --compare $COMPARE_BASELINE matched no produced bench output" >&2
  STATUS=1
fi
exit $STATUS
