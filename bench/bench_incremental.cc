// Incremental maintenance (PR 9): the cost of keeping derived state alive
// across updates versus recomputing it.
//
//   * BM_ColdRecompute_TC        — the pre-PR-9 regime: a fresh session per
//     iteration re-derives the tc fixpoint from scratch (plus the output
//     scan that serves the answer).
//   * BM_SingleTupleUpdate_TC    — one edge toggled per committed
//     transaction, derived state maintained forward (writer cache inside
//     Exec, session cache inside Refresh): EvaluateDelta resumes semi-naive
//     from the single-tuple delta. The headline claim (ISSUE 9): >= 10x
//     faster than the cold recompute at n >= 128.
//   * BM_SingleTupleUpdateServe_TC — the same update plus a query served
//     from the maintained cache: end-to-end latency. The serving scan
//     (evaluating the output rule over the cached extent) is identical in
//     both regimes and predates this PR, so it is kept out of the headline
//     pair and measured here.
//   * BM_BatchedUpdate_TC        — 8 edges per transaction, amortizing the
//     per-commit overhead across a batch delta.
//   * BM_MidChainDeleteDRed_TC   — toggling a load-bearing mid-chain edge:
//     the DRed over-delete cascade touches O(n^2/4) closure pairs, the
//     worst case for delete maintenance (no 10x claim here; this series
//     bounds the cost of the expensive path against full recompute).
//   * BM_ColdConeQuery /
//     BM_CachedConeQuery         — a demanded cone derived fresh per
//     iteration vs re-served and maintained in place across commits.
//
// The update benchmarks alternate insert/delete of the same edge(s) so the
// database returns to its initial state every two iterations — steady
// state, no unbounded growth across benchmark iterations. The toggled
// edges leave a node outside the chain (kFresh), so both directions have a
// delta cone proportional to the batch, not to |tc|. Each update benchmark
// checks after the timed loop that the maintained answer matches a fresh
// session's recomputation.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "benchutil/generators.h"
#include "core/session.h"

namespace rel {
namespace {

constexpr char kTcRules[] =
    "def tc(x, y) : edge(x, y)\n"
    "def tc(x, z) : exists((y) | edge(x, y) and tc(y, z))";

constexpr int kFresh = 100000;  // a source node no ChainGraph ever contains

constexpr char kConeQuery[] = "def output(y) : tc(0, y)";

void ApplyArgs(benchmark::internal::Benchmark* b) {
  b->Arg(128)->Arg(256)->ArgName("n");
}

std::unique_ptr<Engine> ChainEngine(int n) {
  auto engine = std::make_unique<Engine>();
  engine->Define(kTcRules);
  engine->Insert("edge", benchutil::ChainGraph(n));
  return engine;
}

/// Post-loop correctness gate: the maintained session and a fresh session
/// must serve the same cone of the final database state.
void CheckMaintainedAnswer(benchmark::State& state, Engine* engine,
                           Session* maintained) {
  Relation served = maintained->Query(kConeQuery);
  Relation fresh = engine->OpenSession()->Query(kConeQuery);
  if (served.ToString() != fresh.ToString()) {
    state.SkipWithError("maintained answer diverged from recomputation");
  }
}

/// Cold baseline: a fresh session per iteration, so every query re-derives
/// the full tc fixpoint (a new session's extent cache starts empty).
void BM_ColdRecompute_TC(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine = ChainEngine(n);
  for (auto _ : state) {
    std::unique_ptr<Session> session = engine->OpenSession();
    Relation out = session->Query(kConeQuery);
    benchmark::DoNotOptimize(out);
  }
}

/// One edge(kFresh, n-1) toggled per transaction through the commit
/// pipeline, derived state maintained forward: Exec maintains the writer
/// cache, Refresh walks the snapshot's delta chain and maintains the
/// session cache. The delta cone is a single tc tuple in both directions
/// (kFresh has no other edges), so each iteration costs commit + O(1)
/// maintenance — against BM_ColdRecompute_TC's full re-derivation.
void BM_SingleTupleUpdate_TC(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine = ChainEngine(n);
  std::unique_ptr<Session> session = engine->OpenSession();
  session->Query(kConeQuery);  // warm: populates the session extent cache
  const std::string src = std::to_string(kFresh);
  const std::string dst = std::to_string(n - 1);
  const std::string ins =
      "def insert(:edge, x, y) : x = " + src + " and y = " + dst;
  const std::string del =
      "def delete(:edge, x, y) : x = " + src + " and y = " + dst;
  bool inserting = true;
  for (auto _ : state) {
    engine->Exec(inserting ? ins : del);
    session->Refresh();
    inserting = !inserting;
  }
  state.counters["extent_maintained"] = benchmark::Counter(
      static_cast<double>(session->extent_cache().maintained()));
  CheckMaintainedAnswer(state, engine.get(), session.get());
}

/// The same single-tuple update plus a query served from the maintained
/// cache — end-to-end latency including the (regime-independent) output
/// scan over the cached extent.
void BM_SingleTupleUpdateServe_TC(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine = ChainEngine(n);
  std::unique_ptr<Session> session = engine->OpenSession();
  session->Query(kConeQuery);
  const std::string src = std::to_string(kFresh);
  const std::string dst = std::to_string(n - 1);
  const std::string ins =
      "def insert(:edge, x, y) : x = " + src + " and y = " + dst;
  const std::string del =
      "def delete(:edge, x, y) : x = " + src + " and y = " + dst;
  bool inserting = true;
  for (auto _ : state) {
    engine->Exec(inserting ? ins : del);
    session->Refresh();
    Relation out = session->Query(kConeQuery);
    benchmark::DoNotOptimize(out);
    inserting = !inserting;
  }
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(session->extent_cache().hits()));
}

/// Batched: 8 edges from kFresh into the chain interior per transaction
/// (then deleted), amortizing the commit and maintenance overhead. The
/// delta cone is tc(kFresh, *) — O(n/2) tuples — in both directions.
void BM_BatchedUpdate_TC(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine = ChainEngine(n);
  std::unique_ptr<Session> session = engine->OpenSession();
  session->Query(kConeQuery);
  const std::string src = std::to_string(kFresh);
  const std::string lo = std::to_string(n / 2);
  const std::string hi = std::to_string(n / 2 + 7);
  const std::string ins = "def insert(:edge, x, y) : x = " + src +
                          " and range(" + lo + ", " + hi + ", 1, y)";
  const std::string del = "def delete(:edge, x, y) : x = " + src +
                          " and range(" + lo + ", " + hi + ", 1, y)";
  bool inserting = true;
  for (auto _ : state) {
    engine->Exec(inserting ? ins : del);
    session->Refresh();
    inserting = !inserting;
  }
  state.counters["extent_maintained"] = benchmark::Counter(
      static_cast<double>(session->extent_cache().maintained()));
  CheckMaintainedAnswer(state, engine.get(), session.get());
}

/// Worst-case delete: toggling a mid-chain edge cuts the chain, so DRed
/// over-deletes every closure pair crossing the cut (~n^2/4 tuples) and the
/// restoring insert re-derives them. This bounds the expensive path; the
/// alternative is the full recompute BM_ColdRecompute_TC measures.
void BM_MidChainDeleteDRed_TC(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine = ChainEngine(n);
  std::unique_ptr<Session> session = engine->OpenSession();
  session->Query(kConeQuery);
  const std::string a = std::to_string(n / 2);
  const std::string b = std::to_string(n / 2 + 1);
  const std::string del =
      "def delete(:edge, x, y) : x = " + a + " and y = " + b;
  const std::string ins =
      "def insert(:edge, x, y) : x = " + a + " and y = " + b;
  bool deleting = true;
  for (auto _ : state) {
    engine->Exec(deleting ? del : ins);
    session->Refresh();
    deleting = !deleting;
  }
  state.counters["delta_deletes"] = benchmark::Counter(static_cast<double>(
      session->extent_cache().maintain_stats().delta_deletes));
  CheckMaintainedAnswer(state, engine.get(), session.get());
}

/// Demanded cone, cold: a fresh session derives tc(0, y) every iteration.
void BM_ColdConeQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine = ChainEngine(n);
  for (auto _ : state) {
    std::unique_ptr<Session> session = engine->OpenSession();
    session->options().demand_transform = true;
    Relation out = session->Query(kConeQuery);
    benchmark::DoNotOptimize(out);
  }
}

/// Demanded cone, maintained: one warm session re-serves tc(0, y) across
/// single-edge commits — in-place cone maintenance instead of
/// re-derivation. The toggled edge hangs off kFresh, outside the demanded
/// cone, so maintenance is O(|delta cone|), near zero.
void BM_CachedConeQuery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine = ChainEngine(n);
  std::unique_ptr<Session> session = engine->OpenSession();
  session->options().demand_transform = true;
  session->Query(kConeQuery);
  const std::string src = std::to_string(kFresh);
  const std::string dst = std::to_string(n - 1);
  const std::string ins =
      "def insert(:edge, x, y) : x = " + src + " and y = " + dst;
  const std::string del =
      "def delete(:edge, x, y) : x = " + src + " and y = " + dst;
  bool inserting = true;
  for (auto _ : state) {
    engine->Exec(inserting ? ins : del);
    session->Refresh();
    Relation out = session->Query(kConeQuery);
    benchmark::DoNotOptimize(out);
    inserting = !inserting;
  }
  state.counters["cone_maintained"] = benchmark::Counter(
      static_cast<double>(session->demand_cache().maintained()));
}

BENCHMARK(BM_ColdRecompute_TC)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleTupleUpdate_TC)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleTupleUpdateServe_TC)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchedUpdate_TC)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MidChainDeleteDRed_TC)
    ->Apply(ApplyArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdConeQuery)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachedConeQuery)->Apply(ApplyArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rel

BENCHMARK_MAIN();
